//===- tests/StatsInvariantTest.cpp - Cross-config counter invariants -----===//
//
// The statistics layer is only trustworthy if its counters move the way
// the paper says the techniques move the machine code. These tests pin
// the directional claims: configuration C (-O3 + shrink-wrap) never needs
// more save/restore pairs than the Base configuration, shrink-wrapping
// actually moves pairs off the entry block somewhere in the suite, and
// inter-procedural allocation eliminates caller-save traffic around calls
// that intra-procedural allocation must assume are clobber-everything.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "driver/IncrementalService.h"
#include "driver/Pipeline.h"
#include "frontend/Frontend.h"
#include "programs/Programs.h"
#include "sim/Simulator.h"
#include "x64/NativeEngine.h"

#include <gtest/gtest.h>

#include <string>

using namespace ipra;

namespace {

StatCounters compileTotals(const std::string &Src, PaperConfig Config) {
  DiagnosticEngine Diags;
  auto Result = compileProgram(Src, optionsFor(Config), Diags);
  EXPECT_NE(Result, nullptr) << Diags.str();
  if (!Result)
    return StatCounters();
  return Result->Stats.totals();
}

TEST(StatsInvariantTest, ConfigCNeedsNoMoreSaveRestorePairsThanBase) {
  // The paper's headline: -O3 + shrink-wrap reduces the register usage
  // penalty at calls. Counter form, over the whole suite: configuration C
  // charges at most as many callee-saved pairs as Base, statically places
  // at most as many save/restore instructions, and never adds
  // caller-save pairs around calls.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    StatCounters Base = compileTotals(B.Source, PaperConfig::Base);
    StatCounters C = compileTotals(B.Source, PaperConfig::C);
    EXPECT_LE(C.get("regalloc.callee_saved_pairs"),
              Base.get("regalloc.callee_saved_pairs"))
        << B.Name;
    EXPECT_LE(C.get("codegen.callee_saves"),
              Base.get("codegen.callee_saves"))
        << B.Name;
    EXPECT_LE(C.get("codegen.callee_restores"),
              Base.get("codegen.callee_restores"))
        << B.Name;
    EXPECT_LE(C.get("codegen.caller_save_pairs"),
              Base.get("codegen.caller_save_pairs"))
        << B.Name;
  }
}

TEST(StatsInvariantTest, ShrinkWrapMovesPairsOffEntrySomewhere) {
  // The move counters are present under configuration C, and the
  // technique is not a no-op across the suite: at least one program has
  // pairs shrink-wrapped away from the entry block.
  uint64_t TotalMoved = 0;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    StatCounters C = compileTotals(B.Source, PaperConfig::C);
    if (C.get("regalloc.callee_saved_pairs") > 0) {
      EXPECT_TRUE(C.contains("shrinkwrap.saves_placed")) << B.Name;
      EXPECT_TRUE(C.contains("shrinkwrap.saves_moved_off_entry")) << B.Name;
      // A moved pair is still a placed pair.
      EXPECT_LE(C.get("shrinkwrap.saves_moved_off_entry"),
                C.get("shrinkwrap.saves_placed"))
          << B.Name;
    }
    TotalMoved += C.get("shrinkwrap.saves_moved_off_entry") +
                  C.get("shrinkwrap.restores_moved_off_exit");
  }
  EXPECT_GT(TotalMoved, 0u);
}

TEST(StatsInvariantTest, InterProceduralEliminatesCallerSavesAcrossCalls) {
  // A register-pressure fixture: many values live across a call to a
  // leaf procedure. Intra-procedural allocation must assume the callee
  // clobbers every caller-saved register, so values that spill over into
  // caller-saved registers get save/restore pairs around the call.
  // Inter-procedural allocation sees the callee's tiny clobber mask and
  // drops them -- strictly fewer caller-save pairs.
  const char *CrossCall = R"(
    func leaf(x) { return x + 1; }
    func cross(a, b, c, d, e) {
      var t1 = a + b; var t2 = b + c; var t3 = c + d; var t4 = d + e;
      var t5 = a * c; var t6 = b * d; var t7 = a * e; var t8 = c * e;
      var t9 = a - d; var t10 = b - e; var t11 = a * b; var t12 = d * e;
      var s = leaf(a);
      return t1+t2+t3+t4+t5+t6+t7+t8+t9+t10+t11+t12+s;
    }
    func main() { print(cross(1, 2, 3, 4, 5)); return 0; }
  )";
  StatCounters O2 = compileTotals(CrossCall, PaperConfig::Base);
  StatCounters O3 = compileTotals(CrossCall, PaperConfig::B);
  EXPECT_GT(O2.get("codegen.caller_save_pairs"), 0u);
  EXPECT_LT(O3.get("codegen.caller_save_pairs"),
            O2.get("codegen.caller_save_pairs"));

  // And the suite-wide weak form of the same claim.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    StatCounters Intra = compileTotals(B.Source, PaperConfig::Base);
    StatCounters Inter = compileTotals(B.Source, PaperConfig::B);
    EXPECT_LE(Inter.get("codegen.caller_save_pairs"),
              Intra.get("codegen.caller_save_pairs"))
        << B.Name;
  }
}

TEST(StatsInvariantTest, WorklistLivenessBeatsRoundRobinBound) {
  // Regression guard on the worklist liveness solver, measured on the
  // largest suite program end-to-end through the pipeline (every
  // liveness compute of every procedure, optimizer rounds included).
  //
  //  - analysis.liveness_iterations is the summed convergence depth (max
  //    pops of any one block per solve); the worklist must reach the
  //    fixed point within one pass-equivalent per block, so the sum is
  //    bounded by the summed seed sizes.
  //  - analysis.liveness_pops must stay strictly below the old
  //    round-robin sweep's floor of 2 * blocks per solve (one changing
  //    sweep plus one full sweep to detect stability). If a change to
  //    the solver or the traversal order regresses it into re-popping
  //    whole regions, this trips.
  StatCounters T =
      compileTotals(findBenchmark("uopt")->Source, PaperConfig::C);
  uint64_t Blocks = T.get("analysis.liveness_blocks");
  ASSERT_GT(Blocks, 0u);
  EXPECT_LE(T.get("analysis.liveness_iterations"), Blocks);
  EXPECT_LT(T.get("analysis.liveness_pops"), 2 * Blocks);

  // The analysis cache earns its keep on the same compile: regalloc and
  // codegen both reuse the liveness the optimizer's last no-change
  // dead-code round left behind, so hits occur and ranges/interference
  // are built exactly once per procedure.
  EXPECT_GT(T.get("analysis.liveness_cache_hits"), 0u);
  EXPECT_EQ(T.get("analysis.ranges_interference_computes"),
            T.get("pipeline.procs"));
}

TEST(StatsInvariantTest, VerifierCoversEveryProcedureWithZeroViolations) {
  // The MIR audit is default-on and its counters must reconcile with the
  // pipeline's own: every compiled procedure was checked, and a healthy
  // compiler produces zero violations anywhere in the suite.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    for (PaperConfig Config :
         {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
          PaperConfig::D, PaperConfig::E}) {
      StatCounters T = compileTotals(B.Source, Config);
      EXPECT_EQ(T.get("verify.procedures_checked"), T.get("pipeline.procs"))
          << B.Name;
      EXPECT_EQ(T.get("verify.violations"), 0u) << B.Name;
    }
  }
}

/// Inserts a dead `var __editK = Salt;` at the top of the K-th function
/// body: a fingerprint-visible but summary-neutral source edit.
std::string sourceEdit(const std::string &Src, unsigned FuncIdx,
                       long Salt) {
  size_t At = Src.find("func ");
  for (unsigned I = 0; I < FuncIdx && At != std::string::npos; ++I)
    At = Src.find("func ", At + 1);
  if (At == std::string::npos)
    return Src;
  size_t Brace = Src.find('{', At);
  if (Brace == std::string::npos)
    return Src;
  std::string Out = Src;
  Out.insert(Brace + 1, " var __edit" + std::to_string(FuncIdx) + " = " +
                            std::to_string(Salt) + ";");
  return Out;
}

TEST(StatsInvariantTest, IncrementalCountersReconcileWithThePipeline) {
  // The incremental service's counters must reconcile with the compile
  // result they describe: reused + frontier partitions pipeline.procs,
  // the frontier is ancestor-closed over the call graph, and the
  // default-on MIR audit reran over the whole incremental result with
  // zero violations -- cached code included.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    IncrementalService Svc(optionsFor(PaperConfig::C));
    DiagnosticEngine Diags;
    const CompileResult *Cold = Svc.compile(B.Source, Diags);
    ASSERT_NE(Cold, nullptr) << B.Name << "\n" << Diags.str();
    uint64_t Procs = Cold->Stats.totals().get("pipeline.procs");

    // Priming is a full rebuild: the frontier is the whole module.
    StatCounters Prime = Svc.lastStats().counters();
    EXPECT_EQ(Prime.get("incremental.full_rebuild"), 1u) << B.Name;
    EXPECT_EQ(Prime.get("incremental.frontier_size"), Procs) << B.Name;
    EXPECT_EQ(Prime.get("incremental.procs_reused"), 0u) << B.Name;

    // A no-op recompile reuses everything; an edit recompiles at least
    // the edited procedure. Both must keep the partition identity and a
    // clean, fully re-audited result.
    const std::string Sources[] = {B.Source, sourceEdit(B.Source, 0, 41)};
    for (const std::string &Src : Sources) {
      DiagnosticEngine D;
      const CompileResult *R = Svc.recompile(Src, D);
      ASSERT_NE(R, nullptr) << B.Name << "\n" << D.str();
      const IncrementalStats &S = Svc.lastStats();
      StatCounters Inc = S.counters();
      StatCounters Totals = R->Stats.totals();
      EXPECT_EQ(Inc.get("incremental.procs_reused") +
                    Inc.get("incremental.frontier_size"),
                Totals.get("pipeline.procs"))
          << B.Name;
      EXPECT_EQ(Inc.get("incremental.full_rebuild"), 0u) << B.Name;
      EXPECT_EQ(Totals.get("verify.procedures_checked"),
                Totals.get("pipeline.procs"))
          << B.Name << ": the MIR audit must cover cached procedures too";
      EXPECT_EQ(Totals.get("verify.violations"), 0u) << B.Name;

      // Ancestor closure: every closed caller of a summary-changed
      // procedure is in the frontier.
      DiagnosticEngine IRDiags;
      auto M = compileToIR(Src, IRDiags);
      ASSERT_NE(M, nullptr) << B.Name;
      CallGraph CG = CallGraph::build(*M);
      for (unsigned C = 0; C < S.Procs; ++C) {
        if (!S.SummaryChangedFlags[C] || CG.isOpen(int(C)))
          continue;
        for (unsigned P = 0; P < S.Procs; ++P)
          for (int Callee : CG.node(int(P)).Callees)
            if (Callee == int(C)) {
              EXPECT_TRUE(S.RecompiledFlags[P]) << B.Name;
            }
      }
    }
  }
}

TEST(StatsInvariantTest, NoOpRecompileReusesEveryProcedure) {
  // Sharper form of the partition identity on one program: recompiling
  // byte-identical source has an empty frontier and no summary churn.
  const BenchmarkProgram &B = *findBenchmark("dhrystone");
  IncrementalService Svc(optionsFor(PaperConfig::C));
  DiagnosticEngine Diags;
  ASSERT_NE(Svc.compile(B.Source, Diags), nullptr) << Diags.str();
  DiagnosticEngine D2;
  ASSERT_NE(Svc.recompile(B.Source, D2), nullptr) << D2.str();
  const IncrementalStats &S = Svc.lastStats();
  EXPECT_EQ(S.Frontier, 0u);
  EXPECT_EQ(S.Reused, S.Procs);
  EXPECT_EQ(S.SelfChanged, 0u);
  EXPECT_EQ(S.SummaryChanged, 0u);
  EXPECT_FALSE(S.FullRebuild);
}

TEST(StatsInvariantTest, NativeCountersPublishedAndStepsMatchDecoded) {
  // The native engine's observability counters (sim.native.*) must be
  // published for native runs and absent from interpreter reports (so
  // pre-existing --stats-json goldens cannot shift), and the instrumented
  // JIT's step accounting must equal the decoded engine's across the
  // whole suite -- the counter-level form of the byte-exactness contract
  // tests/NativeEngineTest.cpp proves field by field.
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    DiagnosticEngine Diags;
    auto Result =
        compileProgram(B.Source, optionsFor(PaperConfig::C), Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    SimOptions Opts;
    Opts.Engine = SimEngine::Decoded;
    RunStats Dec = runProgram(Result->Program, Opts);
    ASSERT_TRUE(Dec.OK) << B.Name << ": " << Dec.Error;
    Opts.Engine = SimEngine::Native;
    RunStats Nat = runProgram(Result->Program, Opts);
    ASSERT_TRUE(Nat.OK) << B.Name << ": " << Nat.Error;

    EXPECT_EQ(Nat.Instructions, Dec.Instructions) << B.Name;
    EXPECT_EQ(Nat.Cycles, Dec.Cycles) << B.Name;
    // Every procedure with a body was JIT-compiled (externals are not).
    EXPECT_GT(Nat.NativeProcs, 0u) << B.Name;
    EXPECT_LE(Nat.NativeProcs, uint64_t(Result->Program.Procs.size()))
        << B.Name;
    EXPECT_GT(Nat.NativeCodeBytes, 0u) << B.Name;
    // A clean full run never enters the careful tail.
    EXPECT_EQ(Nat.NativeBailouts, 0u) << B.Name;

    StatCounters NC = Nat.counters();
    EXPECT_EQ(NC.get("sim.native.procs_compiled"), Nat.NativeProcs) << B.Name;
    EXPECT_EQ(NC.get("sim.native.code_bytes"), Nat.NativeCodeBytes)
        << B.Name;
    EXPECT_EQ(Dec.counters().json().find("sim.native"), std::string::npos)
        << B.Name;
    EXPECT_EQ(Dec.counters().json().find("verify.native"), std::string::npos)
        << B.Name;

    // Native-verifier reconciliation: with the audit on (the default in
    // these builds) every compiled procedure body was checked, none was
    // skipped, and an OK run carries zero findings by construction.
    if (Opts.VerifyNative) {
      EXPECT_EQ(Nat.NativeVerifiedProcs, Nat.NativeProcs) << B.Name;
      EXPECT_EQ(Nat.NativeVerifyViolations, 0u) << B.Name;
      EXPECT_EQ(NC.get("verify.native.procedures_checked"),
                NC.get("sim.native.procs_compiled"))
          << B.Name;
      EXPECT_EQ(NC.get("verify.native.violations"), 0u) << B.Name;
    }
  }
}

TEST(StatsInvariantTest, CountersAgreeWithTheMachineProgram) {
  // The codegen instruction tallies are not a parallel bookkeeping world:
  // their total equals the instruction count of the emitted program.
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::C, PaperConfig::E}) {
    DiagnosticEngine Diags;
    auto Result = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(Config), Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    StatCounters T = Result->Stats.totals();
    EXPECT_EQ(T.get("codegen.insts_total"),
              uint64_t(Result->Program.instructionCount()));
    EXPECT_EQ(T.get("pipeline.static_instructions"),
              uint64_t(Result->StaticInstructions));
    EXPECT_EQ(T.get("pipeline.procs"), uint64_t(Result->IR->numProcedures()));
  }
}

} // namespace
