//===- tests/ConventionTest.cpp - Dynamic convention checking -------------===//
//
// Runs the whole benchmark suite under the simulator's convention checker:
// at every dynamic call, the callee must preserve every register outside
// its published usage summary and restore the stack pointer exactly. This
// dynamically validates the central inter-procedural contract -- that a
// summary saying "unused" really means the caller may keep a live value
// there across the call.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

RunStats runChecked(const std::string &Src, const CompileOptions &Opts) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, Opts, Diags);
  if (!Compiled) {
    RunStats Bad;
    Bad.Error = Diags.str();
    return Bad;
  }
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  return runProgram(Compiled->Program, SOpts);
}

class ConventionSuiteTest
    : public ::testing::TestWithParam<BenchmarkProgram> {};

TEST_P(ConventionSuiteTest, EveryCallHonoursItsSummary) {
  const BenchmarkProgram &B = GetParam();
  for (PaperConfig Config : {PaperConfig::Base, PaperConfig::B,
                             PaperConfig::C, PaperConfig::D,
                             PaperConfig::E}) {
    RunStats Stats = runChecked(B.Source, optionsFor(Config));
    ASSERT_TRUE(Stats.OK) << B.Name << " under " << paperConfigName(Config)
                          << ": " << Stats.Error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ConventionSuiteTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &I) {
      return std::string(I.param.Name);
    });

TEST(ConventionTest, DetectsViolations) {
  // Sanity-check the checker itself: a hand-corrupted program must trip
  // it. Compile a good program, then make the callee clobber a register
  // its summary promises to preserve.
  const char *Src = R"(
    func quiet(x) { return x + 1; }
    func main() {
      var keep = 5;
      var r = quiet(1);
      print(keep + r);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();
  // Find a register quiet()'s summary promises to preserve and smash it.
  int QuietId = Compiled->IR->findProcedure("quiet")->id();
  const BitVector &Clobber = Compiled->Program.ClobberMasks[QuietId];
  int Victim = -1;
  for (unsigned Reg = RegA0; Reg < NumPhysRegs; ++Reg)
    if (!Clobber.test(Reg)) {
      Victim = int(Reg);
      break;
    }
  ASSERT_GE(Victim, 0) << "summary clobbers everything?";
  MInst Smash(MOpcode::LoadImm);
  Smash.Rd = uint8_t(Victim);
  Smash.Imm = 12345;
  MProc &Quiet = Compiled->Program.Procs[QuietId];
  Quiet.Blocks[0].Insts.insert(Quiet.Blocks[0].Insts.begin(), Smash);

  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Compiled->Program, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("convention violation"), std::string::npos)
      << Stats.Error;
  EXPECT_NE(Stats.Error.find("quiet"), std::string::npos);
}

TEST(ConventionTest, DetectsStackImbalance) {
  const char *Src = R"(
    func f(x) { return x; }
    func main() { return f(1); }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Compiled, nullptr);
  // Make f leak one stack word.
  int FId = Compiled->IR->findProcedure("f")->id();
  MProc &F = Compiled->Program.Procs[FId];
  MInst Leak(MOpcode::AddImm);
  Leak.Rd = RegSP;
  Leak.Rs = RegSP;
  Leak.Imm = -1;
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), Leak);
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Compiled->Program, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("stack pointer"), std::string::npos);
}

TEST(ConventionTest, SeparateCompilationHonoursConventions) {
  DiagnosticEngine Diags;
  auto Result = compileUnits(
      {"export func twice(x) { return x * 2; }",
       "extern func twice(x); func main() { print(twice(21)); return 0; }"},
      optionsFor(PaperConfig::C), Diags, /*InternalizeExports=*/false);
  ASSERT_NE(Result, nullptr) << Diags.str();
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Result->Program, SOpts);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{42}));
}

} // namespace
