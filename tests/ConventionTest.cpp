//===- tests/ConventionTest.cpp - Dynamic convention checking -------------===//
//
// Runs the whole benchmark suite under the simulator's convention checker:
// at every dynamic call, the callee must preserve every register outside
// its published usage summary and restore the stack pointer exactly. This
// dynamically validates the central inter-procedural contract -- that a
// summary saying "unused" really means the caller may keep a live value
// there across the call.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"

#include "TestRender.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

RunStats runChecked(const std::string &Src, const CompileOptions &Opts) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, Opts, Diags);
  if (!Compiled) {
    RunStats Bad;
    Bad.Error = Diags.str();
    return Bad;
  }
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  return runProgram(Compiled->Program, SOpts);
}

class ConventionSuiteTest
    : public ::testing::TestWithParam<BenchmarkProgram> {};

TEST_P(ConventionSuiteTest, EveryCallHonoursItsSummary) {
  const BenchmarkProgram &B = GetParam();
  for (PaperConfig Config : {PaperConfig::Base, PaperConfig::B,
                             PaperConfig::C, PaperConfig::D,
                             PaperConfig::E}) {
    RunStats Stats = runChecked(B.Source, optionsFor(Config));
    ASSERT_TRUE(Stats.OK) << B.Name << " under " << paperConfigName(Config)
                          << ": " << Stats.Error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ConventionSuiteTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &I) {
      return std::string(I.param.Name);
    });

TEST(ConventionTest, DetectsViolations) {
  // Sanity-check the checker itself: a hand-corrupted program must trip
  // it. Compile a good program, then make the callee clobber a register
  // its summary promises to preserve.
  const char *Src = R"(
    func quiet(x) { return x + 1; }
    func main() {
      var keep = 5;
      var r = quiet(1);
      print(keep + r);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();
  // Find a register quiet()'s summary promises to preserve and smash it.
  int QuietId = Compiled->IR->findProcedure("quiet")->id();
  const BitVector &Clobber = Compiled->Program.ClobberMasks[QuietId];
  int Victim = -1;
  for (unsigned Reg = AllocPoolFirst; Reg < NumPhysRegs; ++Reg)
    if (!Clobber.test(Reg)) {
      Victim = int(Reg);
      break;
    }
  ASSERT_GE(Victim, 0) << "summary clobbers everything?";
  MInst Smash(MOpcode::LoadImm);
  Smash.Rd = uint8_t(Victim);
  Smash.Imm = 12345;
  MProc &Quiet = Compiled->Program.Procs[QuietId];
  Quiet.Blocks[0].Insts.insert(Quiet.Blocks[0].Insts.begin(), Smash);

  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Compiled->Program, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("convention violation"), std::string::npos)
      << Stats.Error;
  EXPECT_NE(Stats.Error.find("quiet"), std::string::npos);
}

TEST(ConventionTest, DetectsStackImbalance) {
  const char *Src = R"(
    func f(x) { return x; }
    func main() { return f(1); }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Compiled, nullptr);
  // Make f leak one stack word.
  int FId = Compiled->IR->findProcedure("f")->id();
  MProc &F = Compiled->Program.Procs[FId];
  MInst Leak(MOpcode::AddImm);
  Leak.Rd = RegSP;
  Leak.Rs = RegSP;
  Leak.Imm = -1;
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), Leak);
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Compiled->Program, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("stack pointer"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ConventionSpec kernel: parse/print/validate.
//===----------------------------------------------------------------------===//

ConventionSpec mustParse(const std::string &Text) {
  ConventionSpec Spec;
  std::string Err;
  EXPECT_TRUE(ConventionSpec::parse(Text, Spec, Err))
      << "'" << Text << "': " << Err;
  return Spec;
}

TEST(ConventionSpecTest, DefaultSpellings) {
  ConventionSpec Default = ConventionSpec::defaultSpec();
  EXPECT_TRUE(Default.validate());
  EXPECT_EQ(Default.str(), "s:9,p:4");
  // The issue's canonical spelling, the count-only form, and the explicit
  // register-list form all denote the paper's convention.
  EXPECT_EQ(mustParse("s:9,p:4"), Default);
  EXPECT_EQ(mustParse("s:9"), Default);
  EXPECT_EQ(mustParse("callee=s0-s8;params=a0-a3"), Default);
  EXPECT_EQ(mustParse("callee=s0-s8;params=a0,a1,a2,a3;reserved="), Default);
  // And a fresh CompileOptions compiles against exactly this spec.
  EXPECT_EQ(CompileOptions().Convention, Default);
}

TEST(ConventionSpecTest, RoundTripsBothForms) {
  for (const char *Text :
       {"s:0,p:0", "s:0,p:4", "s:20,p:0", "s:5,p:6", "s:9,p:4,r:3",
        "s:13,p:2", "callee=a0,t3-t5;params=t0,a1;reserved=s7-s8",
        "callee=;params=s0-s3", "callee=a0-s8;params="}) {
    ConventionSpec Spec = mustParse(Text);
    ConventionSpec Again = mustParse(Spec.str());
    EXPECT_EQ(Spec, Again) << Text << " printed as " << Spec.str();
  }
  // "callee=a0,..." makes a0 callee-saved, so params land elsewhere; the
  // printer keeps the explicit form for such non-suffix splits.
  ConventionSpec Odd = mustParse("callee=a0,t3-t5;params=t0,a1");
  EXPECT_NE(Odd.str().find("callee="), std::string::npos);
}

TEST(ConventionSpecTest, RejectsMalformedAndInvalid) {
  ConventionSpec Spec;
  std::string Err;
  for (const char *Text :
       {"", "s:", "s:9,p:", "s:21", "s:9,p:12", // p exceeds 11 caller-saved
        "s:9,x:1", "s:9,s:9", "banana",
        "callee=zzz;params=", "callee=s0-s8;params=s0", // callee-saved param
        "callee=s0-s8;params=a0,a0",                    // duplicate param
        "callee=sp;params=",                            // outside the pool
        "callee=s0-s8;params=ra", "s:9,p:4,r:21", "s:9,,p:4"}) {
    EXPECT_FALSE(ConventionSpec::parse(Text, Spec, Err)) << Text;
  }
  // callee= alone defaults the params, like the short form does.
  EXPECT_EQ(mustParse("callee=s0-s8"), ConventionSpec::defaultSpec());
}

TEST(ConventionSpecTest, RestrictionIsReservation) {
  // Table-2's D and E are conventions: the default split with everything
  // outside the restricted file reserved. The machines they build must
  // match the option-driven ones mask for mask.
  for (RegSetRestriction R : {RegSetRestriction::None,
                              RegSetRestriction::CallerOnly7,
                              RegSetRestriction::CalleeOnly7}) {
    MachineDesc ByOption(R);
    MachineDesc BySpec(ConventionSpec::forRestriction(R));
    EXPECT_EQ(ByOption.allocatable(), BySpec.allocatable());
    EXPECT_EQ(ByOption.callerSaved(), BySpec.callerSaved());
    EXPECT_EQ(ByOption.calleeSaved(), BySpec.calleeSaved());
    EXPECT_EQ(ByOption.defaultClobber(), BySpec.defaultClobber());
    EXPECT_EQ(ByOption.paramRegs(), BySpec.paramRegs());
    // Restriction round-trips through the spelling, too.
    ConventionSpec Reparsed =
        mustParse(ConventionSpec::forRestriction(R).str());
    EXPECT_EQ(Reparsed, ConventionSpec::forRestriction(R));
  }
  // D keeps a0-a3,t0-t2: 7 allocatable registers, all caller-saved.
  MachineDesc D(RegSetRestriction::CallerOnly7);
  EXPECT_EQ(D.allocatable().count(), 7u);
  EXPECT_TRUE(D.allocatable().isSubsetOf(D.callerSaved()));
  // E keeps s0-s6: 7 allocatable registers, all callee-saved.
  MachineDesc E(RegSetRestriction::CalleeOnly7);
  EXPECT_EQ(E.allocatable().count(), 7u);
  EXPECT_TRUE(E.allocatable().isSubsetOf(E.calleeSaved()));
}

TEST(ConventionSpecTest, MachineMasksFollowTheSpec) {
  ConventionSpec Spec =
      mustParse("callee=a0,t3-t5;params=t0,a1;reserved=t5,s8");
  MachineDesc M(Spec);
  EXPECT_EQ(M.calleeSaved(), Spec.CalleeSaved);
  EXPECT_EQ(M.callerSaved().count(), AllocPoolSize - 4);
  EXPECT_FALSE(M.isAllocatable(RegS8));
  EXPECT_FALSE(M.isAllocatable(RegT5));
  EXPECT_TRUE(M.isCalleeSaved(RegA0));
  EXPECT_FALSE(M.isCallerSaved(RegA0));
  // Reservation never changes classification: reserved t5 stays
  // callee-saved, reserved s8 stays caller-saved (and so clobberable).
  EXPECT_TRUE(M.isCalleeSaved(RegT5));
  EXPECT_TRUE(M.isCallerSaved(RegS8));
  EXPECT_TRUE(M.defaultClobber().test(RegS8));
  // Caller-saved registers (and only pool + at/v0/v1) form the clobber.
  EXPECT_TRUE(M.callerSaved().isSubsetOf(M.defaultClobber()));
  EXPECT_FALSE(M.defaultClobber().test(RegA0));
  EXPECT_TRUE(M.defaultClobber().test(RegAT));
  EXPECT_EQ(M.paramRegs(), (std::vector<unsigned>{RegT0, RegA1}));
}

TEST(ConventionSpecTest, PipelineRejectsInvalidConvention) {
  CompileOptions Opts;
  Opts.Convention.ParamRegs = {RegS0}; // callee-saved parameter register
  DiagnosticEngine Diags;
  auto Result =
      compileProgram("func main() { return 0; }", Opts, Diags);
  EXPECT_EQ(Result, nullptr);
  EXPECT_NE(Diags.str().find("invalid calling convention"),
            std::string::npos)
      << Diags.str();
}

//===----------------------------------------------------------------------===//
// Differential test: the explicit default convention must be a no-op.
//===----------------------------------------------------------------------===//

TEST(ConventionDefaultDifferentialTest, ExplicitDefaultIsByteIdentical) {
  // `--convention=s:9,p:4` spelling the paper's default must produce
  // byte-identical machine code, stats JSON and simulator counters to the
  // implicit default, for every paper configuration at Threads 0/1/4.
  ConventionSpec Explicit = mustParse("s:9,p:4");
  const char *Src = R"(
    func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    func sum3(a, b, c) { return a + b + c; }
    func wide(a, b, c, d, e, f) { return a*b + c*d + e*f; }
    func main() {
      var i = 0; var acc = 0;
      while (i < 8) { acc = acc + fib(i) + wide(i,2,3,4,5,6); i = i + 1; }
      print(acc + sum3(1, 2, 3));
      return 0;
    }
  )";
  for (PaperConfig Config : {PaperConfig::Base, PaperConfig::A,
                             PaperConfig::B, PaperConfig::C, PaperConfig::D,
                             PaperConfig::E}) {
    for (unsigned Threads : {0u, 1u, 4u}) {
      CompileOptions Implicit = optionsFor(Config);
      Implicit.Threads = Threads;
      CompileOptions Spelled = Implicit;
      Spelled.Convention = Explicit;

      DiagnosticEngine DiagsA, DiagsB;
      auto A = compileProgram(Src, Implicit, DiagsA);
      auto B = compileProgram(Src, Spelled, DiagsB);
      ASSERT_NE(A, nullptr) << DiagsA.str();
      ASSERT_NE(B, nullptr) << DiagsB.str();
      EXPECT_EQ(renderProgram(*A), renderProgram(*B))
          << paperConfigName(Config) << " Threads=" << Threads;
      EXPECT_EQ(A->Stats.json(), B->Stats.json())
          << paperConfigName(Config) << " Threads=" << Threads;

      SimOptions SOpts;
      SOpts.CheckConventions = true;
      RunStats RunA = runProgram(A->Program, SOpts);
      RunStats RunB = runProgram(B->Program, SOpts);
      ASSERT_TRUE(RunA.OK) << RunA.Error;
      ASSERT_TRUE(RunB.OK) << RunB.Error;
      EXPECT_EQ(RunA.counters().json(), RunB.counters().json())
          << paperConfigName(Config) << " Threads=" << Threads;
    }
  }
}

TEST(ConventionDefaultDifferentialTest, SuiteMachineCodeUnchanged) {
  // The explicit spelling over the real benchmark suite, config C serial:
  // rendered programs (code, clobber masks, layout) must be identical.
  ConventionSpec Explicit = mustParse("callee=s0-s8;params=a0-a3");
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    CompileOptions Implicit = optionsFor(PaperConfig::C);
    Implicit.Threads = 0;
    CompileOptions Spelled = Implicit;
    Spelled.Convention = Explicit;
    DiagnosticEngine DiagsA, DiagsB;
    auto ResA = compileProgram(B.Source, Implicit, DiagsA);
    auto ResB = compileProgram(B.Source, Spelled, DiagsB);
    ASSERT_NE(ResA, nullptr) << B.Name << ": " << DiagsA.str();
    ASSERT_NE(ResB, nullptr) << B.Name << ": " << DiagsB.str();
    EXPECT_EQ(renderProgram(*ResA), renderProgram(*ResB)) << B.Name;
  }
}

TEST(ConventionTest, SeparateCompilationHonoursConventions) {
  DiagnosticEngine Diags;
  auto Result = compileUnits(
      {"export func twice(x) { return x * 2; }",
       "extern func twice(x); func main() { print(twice(21)); return 0; }"},
      optionsFor(PaperConfig::C), Diags, /*InternalizeExports=*/false);
  ASSERT_NE(Result, nullptr) << Diags.str();
  SimOptions SOpts;
  SOpts.CheckConventions = true;
  RunStats Stats = runProgram(Result->Program, SOpts);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{42}));
}

} // namespace
