//===- tests/MIRVerifierSweepTest.cpp - Whole-suite verifier sweep --------===//
//
// Every benchmark program, at every paper configuration, through the
// serial and parallel back ends, must come out of the compiler with a
// machine program the MIR verifier accepts outright: zero violations,
// every procedure covered. This is the standing proof obligation the
// verifier places on the rest of the compiler -- any regression in
// summaries, shrink-wrap pairing, linkage or frame discipline trips it
// here before it can reach the simulator.
//
// Tagged PARALLEL (it drives the DAG-scheduled back end at several
// thread counts) and "verify"; both labels are in the TSan preset's set.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "verify/MIRVerifier.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

const PaperConfig AllConfigs[] = {PaperConfig::Base, PaperConfig::A,
                                  PaperConfig::B,    PaperConfig::C,
                                  PaperConfig::D,    PaperConfig::E};

TEST(MIRVerifierSweepTest, SuiteIsViolationFreeAtEveryConfiguration) {
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    for (PaperConfig Config : AllConfigs) {
      for (unsigned Threads : {0u, 1u, 4u}) {
        CompileOptions Opts = optionsFor(Config);
        Opts.Threads = Threads;
        DiagnosticEngine Diags;
        auto Result = compileProgram(B.Source, Opts, Diags);
        ASSERT_NE(Result, nullptr)
            << B.Name << " @ " << paperConfigName(Config) << "\n"
            << Diags.str();
        EXPECT_FALSE(Diags.hasErrors())
            << B.Name << " @ " << paperConfigName(Config) << " threads="
            << Threads << "\n"
            << Diags.str();
        EXPECT_EQ(Result->Stats.Module.get("verify.violations"), 0u)
            << B.Name << " @ " << paperConfigName(Config);
        EXPECT_EQ(Result->Stats.Module.get("verify.procedures_checked"),
                  uint64_t(Result->IR->numProcedures()))
            << B.Name << " @ " << paperConfigName(Config);
      }
    }
  }
}

TEST(MIRVerifierSweepTest, SeparateCompilationIsViolationFree) {
  // The Section-7 cross-module path (library boundary kept open and
  // internalized alike) flows through the same audit.
  std::vector<std::string> Units = {
      "export func tick(x) { return x * 3 + 1; }"
      "func helper(y) { return y - 2; }"
      "export func work(n) { return tick(helper(n)); }",
      "extern func work(n);"
      "func main() { print(work(10)); return 0; }"};
  for (bool Internalize : {true, false}) {
    for (PaperConfig Config : {PaperConfig::Base, PaperConfig::C}) {
      DiagnosticEngine Diags;
      auto Result =
          compileUnits(Units, optionsFor(Config), Diags, Internalize);
      ASSERT_NE(Result, nullptr) << Diags.str();
      EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
      EXPECT_EQ(Result->Stats.Module.get("verify.violations"), 0u);
    }
  }
}

TEST(MIRVerifierSweepTest, DirectAuditAgreesWithTheDriverHook) {
  // Calling the verifier by hand on a compile result reports exactly what
  // the pipeline hook counted: the counter is not a separate bookkeeping
  // world.
  DiagnosticEngine Diags;
  auto Result = compileProgram(findBenchmark("dhrystone")->Source,
                               optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Result, nullptr) << Diags.str();
  MVerifyResult V = verifyMachineProgram(Result->Program, *Result->Summaries);
  EXPECT_TRUE(V.ok()) << V.str();
  EXPECT_EQ(uint64_t(V.ProceduresChecked),
            Result->Stats.Module.get("verify.procedures_checked"));
  EXPECT_TRUE(verifyPlacements(*Result->IR, Result->Alloc, *Result->Summaries,
                               /*InterMode=*/true)
                  .empty());
}

} // namespace
