//===- tests/SupportTest.cpp - Unit tests for support utilities -----------===//

#include "support/BitVector.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace ipra;

TEST(BitVectorTest, EmptyVector) {
  BitVector BV;
  EXPECT_EQ(BV.size(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_EQ(BV.findFirst(), -1);
}

TEST(BitVectorTest, SetResetTest) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_FALSE(BV.test(128));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVectorTest, InitialValueTrue) {
  BitVector BV(70, true);
  EXPECT_EQ(BV.count(), 70u);
  for (unsigned I = 0; I < 70; ++I)
    EXPECT_TRUE(BV.test(I)) << "bit " << I;
}

TEST(BitVectorTest, ResizeGrowWithTrue) {
  BitVector BV(10);
  BV.set(3);
  BV.resize(100, true);
  EXPECT_TRUE(BV.test(3));
  EXPECT_FALSE(BV.test(4));
  for (unsigned I = 10; I < 100; ++I)
    EXPECT_TRUE(BV.test(I)) << "bit " << I;
  EXPECT_EQ(BV.count(), 91u);
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector BV(67);
  BV.setAll();
  EXPECT_EQ(BV.count(), 67u);
}

TEST(BitVectorTest, FindFirstNext) {
  BitVector BV(200);
  BV.set(5);
  BV.set(63);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 5);
  EXPECT_EQ(BV.findNext(5), 63);
  EXPECT_EQ(BV.findNext(63), 64);
  EXPECT_EQ(BV.findNext(64), 199);
  EXPECT_EQ(BV.findNext(199), -1);
}

TEST(BitVectorTest, IterationMatchesSet) {
  std::mt19937 Rng(42);
  std::set<int> Ref;
  BitVector BV(500);
  for (int I = 0; I < 100; ++I) {
    int Bit = int(Rng() % 500);
    Ref.insert(Bit);
    BV.set(unsigned(Bit));
  }
  std::set<int> Got;
  for (int I = BV.findFirst(); I >= 0; I = BV.findNext(unsigned(I)))
    Got.insert(I);
  EXPECT_EQ(Got, Ref);
}

TEST(BitVectorTest, BooleanOperators) {
  BitVector A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(50);
  B.set(99);
  BitVector Or = A | B;
  EXPECT_TRUE(Or.test(1));
  EXPECT_TRUE(Or.test(50));
  EXPECT_TRUE(Or.test(99));
  EXPECT_EQ(Or.count(), 3u);
  BitVector AndV = A & B;
  EXPECT_EQ(AndV.count(), 1u);
  EXPECT_TRUE(AndV.test(50));
  BitVector C = A;
  C.andNot(B);
  EXPECT_EQ(C.count(), 1u);
  EXPECT_TRUE(C.test(1));
}

TEST(BitVectorTest, EqualityAndSubset) {
  BitVector A(64), B(64);
  A.set(10);
  EXPECT_NE(A, B);
  B.set(10);
  EXPECT_EQ(A, B);
  B.set(20);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
}

TEST(BitVectorTest, StrFormat) {
  BitVector A(16);
  EXPECT_EQ(A.str(), "{}");
  A.set(1);
  A.set(9);
  EXPECT_EQ(A.str(), "{1, 9}");
}

TEST(DiagnosticsTest, CollectsErrorsAndWarnings) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({3, 7}, "suspicious");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({1, 2}, "bad token");
  Diags.error("no location");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("3:7: warning: suspicious"), std::string::npos);
  EXPECT_NE(Text.find("1:2: error: bad token"), std::string::npos);
  EXPECT_NE(Text.find("error: no location"), std::string::npos);
}
