//===- tests/SupportTest.cpp - Unit tests for support utilities -----------===//

#include "support/BitVector.h"
#include "support/CodeBuffer.h"
#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <mutex>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace ipra;

TEST(BitVectorTest, EmptyVector) {
  BitVector BV;
  EXPECT_EQ(BV.size(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_EQ(BV.findFirst(), -1);
}

TEST(BitVectorTest, SetResetTest) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_FALSE(BV.test(128));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVectorTest, InitialValueTrue) {
  BitVector BV(70, true);
  EXPECT_EQ(BV.count(), 70u);
  for (unsigned I = 0; I < 70; ++I)
    EXPECT_TRUE(BV.test(I)) << "bit " << I;
}

TEST(BitVectorTest, ResizeGrowWithTrue) {
  BitVector BV(10);
  BV.set(3);
  BV.resize(100, true);
  EXPECT_TRUE(BV.test(3));
  EXPECT_FALSE(BV.test(4));
  for (unsigned I = 10; I < 100; ++I)
    EXPECT_TRUE(BV.test(I)) << "bit " << I;
  EXPECT_EQ(BV.count(), 91u);
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector BV(67);
  BV.setAll();
  EXPECT_EQ(BV.count(), 67u);
}

TEST(BitVectorTest, FindFirstNext) {
  BitVector BV(200);
  BV.set(5);
  BV.set(63);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 5);
  EXPECT_EQ(BV.findNext(5), 63);
  EXPECT_EQ(BV.findNext(63), 64);
  EXPECT_EQ(BV.findNext(64), 199);
  EXPECT_EQ(BV.findNext(199), -1);
}

TEST(BitVectorTest, IterationMatchesSet) {
  std::mt19937 Rng(42);
  std::set<int> Ref;
  BitVector BV(500);
  for (int I = 0; I < 100; ++I) {
    int Bit = int(Rng() % 500);
    Ref.insert(Bit);
    BV.set(unsigned(Bit));
  }
  std::set<int> Got;
  for (int I = BV.findFirst(); I >= 0; I = BV.findNext(unsigned(I)))
    Got.insert(I);
  EXPECT_EQ(Got, Ref);
}

TEST(BitVectorTest, BooleanOperators) {
  BitVector A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(50);
  B.set(99);
  BitVector Or = A | B;
  EXPECT_TRUE(Or.test(1));
  EXPECT_TRUE(Or.test(50));
  EXPECT_TRUE(Or.test(99));
  EXPECT_EQ(Or.count(), 3u);
  BitVector AndV = A & B;
  EXPECT_EQ(AndV.count(), 1u);
  EXPECT_TRUE(AndV.test(50));
  BitVector C = A;
  C.andNot(B);
  EXPECT_EQ(C.count(), 1u);
  EXPECT_TRUE(C.test(1));
}

TEST(BitVectorTest, EqualityAndSubset) {
  BitVector A(64), B(64);
  A.set(10);
  EXPECT_NE(A, B);
  B.set(10);
  EXPECT_EQ(A, B);
  B.set(20);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
}

TEST(BitVectorTest, StrFormat) {
  BitVector A(16);
  EXPECT_EQ(A.str(), "{}");
  A.set(1);
  A.set(9);
  EXPECT_EQ(A.str(), "{1, 9}");
}

TEST(DiagnosticsTest, CollectsErrorsAndWarnings) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({3, 7}, "suspicious");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({1, 2}, "bad token");
  Diags.error("no location");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("3:7: warning: suspicious"), std::string::npos);
  EXPECT_NE(Text.find("1:2: error: bad token"), std::string::npos);
  EXPECT_NE(Text.find("error: no location"), std::string::npos);
}

TEST(DiagnosticsTest, AppendPreservesOrderAndErrorCount) {
  DiagnosticEngine A;
  A.warning({1, 1}, "first");
  DiagnosticEngine B;
  B.error({2, 2}, "second");
  B.warning({3, 3}, "third");
  A.append(std::move(B));
  ASSERT_EQ(A.diagnostics().size(), 3u);
  EXPECT_EQ(A.diagnostics()[0].Message, "first");
  EXPECT_EQ(A.diagnostics()[1].Message, "second");
  EXPECT_EQ(A.diagnostics()[2].Message, "third");
  EXPECT_EQ(A.errorCount(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadFallbackRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 0u);
  std::thread::id RanOn;
  bool RanBeforeEnqueueReturned = false;
  Pool.enqueue([&] {
    RanOn = std::this_thread::get_id();
    RanBeforeEnqueueReturned = true;
  });
  // Inline mode executes during enqueue, on the calling thread.
  EXPECT_TRUE(RanBeforeEnqueueReturned);
  EXPECT_EQ(RanOn, std::this_thread::get_id());
  Pool.wait();
}

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 200; ++I)
    Pool.enqueue([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
  // The pool is reusable after wait().
  Pool.enqueue([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 201);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWait) {
  ThreadPool Pool(2);
  std::atomic<int> Survivors{0};
  Pool.enqueue([] { throw std::runtime_error("task failed"); });
  for (int I = 0; I < 8; ++I)
    Pool.enqueue([&Survivors] { ++Survivors; });
  try {
    Pool.wait();
    FAIL() << "wait() should rethrow the task exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "task failed");
  }
  // Sibling tasks were not cancelled, and the error is not resurfaced.
  EXPECT_EQ(Survivors.load(), 8);
  Pool.wait();
}

TEST(ThreadPoolTest, ZeroThreadExceptionAlsoDeferredToWait) {
  ThreadPool Pool(0);
  Pool.enqueue([] { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, DependencyCountingRespectsTaskOrder) {
  // A diamond plus a chain, driven the same way the pipeline drives its
  // schedule: finishing a task decrements its successors' pending counts
  // and enqueues those that hit zero. Every recorded start must come
  // after all of its dependencies' finishes.
  //   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
  const std::vector<std::vector<int>> Succs = {{1, 2}, {3}, {3}, {4}, {}};
  const std::vector<unsigned> Deps = {0, 1, 1, 2, 1};
  for (unsigned Threads : {1u, 4u}) {
    std::vector<std::atomic<unsigned>> Pending(Deps.size());
    for (unsigned T = 0; T < Deps.size(); ++T)
      Pending[T].store(Deps[T]);
    std::mutex OrderMutex;
    std::vector<int> Order;
    ThreadPool Pool(Threads);
    std::function<void(int)> Run = [&](int Task) {
      {
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Order.push_back(Task);
      }
      for (int S : Succs[Task])
        if (Pending[S].fetch_sub(1) == 1)
          Pool.enqueue([&Run, S] { Run(S); });
    };
    Pool.enqueue([&Run] { Run(0); });
    Pool.wait();
    ASSERT_EQ(Order.size(), Deps.size()) << Threads << " threads";
    auto Pos = [&Order](int T) {
      return std::find(Order.begin(), Order.end(), T) - Order.begin();
    };
    EXPECT_LT(Pos(0), Pos(1));
    EXPECT_LT(Pos(0), Pos(2));
    EXPECT_LT(Pos(1), Pos(3));
    EXPECT_LT(Pos(2), Pos(3));
    EXPECT_LT(Pos(3), Pos(4));
  }
}

//===----------------------------------------------------------------------===//
// CodeBuffer (the JIT backend's W^X executable-memory helper)
//===----------------------------------------------------------------------===//

TEST(CodeBufferTest, AllocateGivesZeroedWritablePages) {
  CodeBuffer Buf;
  std::string Err;
  ASSERT_TRUE(Buf.allocate(100, Err)) << Err;
  ASSERT_NE(Buf.data(), nullptr);
  // Rounded up to whole pages, zero-filled, and writable/readable.
  EXPECT_GE(Buf.capacity(), 100u);
  EXPECT_EQ(Buf.capacity() % 4096, 0u);
  for (size_t I = 0; I < Buf.capacity(); ++I)
    ASSERT_EQ(Buf.data()[I], 0) << "byte " << I;
  Buf.data()[0] = 0xC3;
  Buf.data()[Buf.capacity() - 1] = 0x90;
  EXPECT_EQ(Buf.data()[0], 0xC3);
  // Not executable yet: no entry pointer before the W^X flip.
  EXPECT_FALSE(Buf.executable());
  EXPECT_EQ(Buf.entry(), nullptr);
}

TEST(CodeBufferTest, RejectsEmptyAllocation) {
  CodeBuffer Buf;
  std::string Err;
  EXPECT_FALSE(Buf.allocate(0, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(CodeBufferTest, MakeExecutableFlipsAndSeals) {
  if (!CodeBuffer::hardwareSupported())
    GTEST_SKIP() << "no executable-memory support in this build";
  CodeBuffer Buf;
  std::string Err;
  ASSERT_TRUE(Buf.allocate(16, Err)) << Err;
  Buf.data()[0] = 0xC3; // ret
  ASSERT_TRUE(Buf.makeExecutable(Err)) << Err;
  EXPECT_TRUE(Buf.executable());
  EXPECT_NE(Buf.entry(), nullptr);
  EXPECT_EQ(Buf.entry(0), Buf.data());
  // Out-of-range entry offsets stay null.
  EXPECT_EQ(Buf.entry(Buf.capacity()), nullptr);
  // Idempotent once flipped.
  EXPECT_TRUE(Buf.makeExecutable(Err));
}

TEST(CodeBufferTest, MakeExecutableWithoutAllocationFails) {
  CodeBuffer Buf;
  std::string Err;
  EXPECT_FALSE(Buf.makeExecutable(Err));
  EXPECT_FALSE(Err.empty());
}

TEST(CodeBufferTest, MoveTransfersOwnership) {
  CodeBuffer A;
  std::string Err;
  ASSERT_TRUE(A.allocate(8, Err)) << Err;
  uint8_t *P = A.data();
  CodeBuffer B = std::move(A);
  EXPECT_EQ(B.data(), P);
  EXPECT_EQ(A.data(), nullptr);
  EXPECT_EQ(A.capacity(), 0u);
}

#if defined(__x86_64__) || defined(_M_X64)
TEST(CodeBufferTest, ExecutesEmittedCodeOnX64) {
  if (!CodeBuffer::hardwareSupported())
    GTEST_SKIP() << "no executable-memory support in this build";
  CodeBuffer Buf;
  std::string Err;
  ASSERT_TRUE(Buf.allocate(16, Err)) << Err;
  // mov eax, 42; ret
  const uint8_t Code[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  std::memcpy(Buf.data(), Code, sizeof(Code));
  ASSERT_TRUE(Buf.makeExecutable(Err)) << Err;
  int (*Fn)();
  const void *Entry = Buf.entry();
  std::memcpy(&Fn, &Entry, sizeof(Fn));
  EXPECT_EQ(Fn(), 42);
}
#endif
