//===- tests/CodeGenTest.cpp - Machine-level unit tests -------------------===//

#include "codegen/CodeGen.h"
#include "codegen/ParallelMove.h"
#include "driver/Pipeline.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace ipra;

namespace {

//===----------------------------------------------------------------------===
// Parallel move resolution
//===----------------------------------------------------------------------===

/// Executes a move sequence over an abstract register file and returns the
/// final contents.
std::map<unsigned, int> runMoves(const std::vector<RegMove> &Seq,
                                 std::map<unsigned, int> Regs) {
  for (auto [Dst, Src] : Seq)
    Regs[Dst] = Regs[Src];
  return Regs;
}

TEST(ParallelMoveTest, IndependentMoves) {
  auto Seq = sequentializeMoves({{1, 2}, {3, 4}}, 99);
  auto Final = runMoves(Seq, {{2, 20}, {4, 40}, {1, 0}, {3, 0}, {99, 0}});
  EXPECT_EQ(Final[1], 20);
  EXPECT_EQ(Final[3], 40);
  EXPECT_EQ(Seq.size(), 2u);
}

TEST(ParallelMoveTest, SelfMovesDropped) {
  auto Seq = sequentializeMoves({{1, 1}, {2, 2}}, 99);
  EXPECT_TRUE(Seq.empty());
}

TEST(ParallelMoveTest, ChainOrdering) {
  // 1<-2, 2<-3: must move 1<-2 first.
  auto Seq = sequentializeMoves({{1, 2}, {2, 3}}, 99);
  auto Final = runMoves(Seq, {{1, 0}, {2, 20}, {3, 30}, {99, 0}});
  EXPECT_EQ(Final[1], 20);
  EXPECT_EQ(Final[2], 30);
  EXPECT_EQ(Seq.size(), 2u) << "no scratch needed for a chain";
}

TEST(ParallelMoveTest, SwapUsesScratch) {
  auto Seq = sequentializeMoves({{1, 2}, {2, 1}}, 99);
  auto Final = runMoves(Seq, {{1, 10}, {2, 20}, {99, 0}});
  EXPECT_EQ(Final[1], 20);
  EXPECT_EQ(Final[2], 10);
  EXPECT_EQ(Seq.size(), 3u) << "swap = park + two moves";
}

TEST(ParallelMoveTest, ThreeCycle) {
  auto Seq = sequentializeMoves({{1, 2}, {2, 3}, {3, 1}}, 99);
  auto Final = runMoves(Seq, {{1, 10}, {2, 20}, {3, 30}, {99, 0}});
  EXPECT_EQ(Final[1], 20);
  EXPECT_EQ(Final[2], 30);
  EXPECT_EQ(Final[3], 10);
}

TEST(ParallelMoveTest, RandomPermutationsAlwaysCorrect) {
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 200; ++Trial) {
    // A random partial mapping over registers 1..8 with distinct dsts.
    unsigned N = 1 + Rng() % 8;
    std::vector<unsigned> Dsts{1, 2, 3, 4, 5, 6, 7, 8};
    std::shuffle(Dsts.begin(), Dsts.end(), Rng);
    std::vector<RegMove> Moves;
    std::map<unsigned, int> Init{{99, -1}};
    for (unsigned I = 1; I <= 8; ++I)
      Init[I] = int(I * 10);
    for (unsigned I = 0; I < N; ++I)
      Moves.push_back({Dsts[I], 1 + Rng() % 8});
    auto Expected = Init;
    for (auto [Dst, Src] : Moves)
      Expected[Dst] = Init[Src]; // parallel semantics
    auto Final = runMoves(sequentializeMoves(Moves, 99), Init);
    for (unsigned I = 1; I <= 8; ++I)
      EXPECT_EQ(Final[I], Expected[I]) << "trial " << Trial << " reg " << I;
  }
}

//===----------------------------------------------------------------------===
// Generated-code structure
//===----------------------------------------------------------------------===

std::unique_ptr<CompileResult> compileOK(const std::string &Src,
                                         PaperConfig Config) {
  DiagnosticEngine Diags;
  auto R = compileProgram(Src, optionsFor(Config), Diags);
  EXPECT_NE(R, nullptr) << Diags.str();
  return R;
}

const MProc &procOf(CompileResult &R, const char *Name) {
  return R.Program.Procs[R.IR->findProcedure(Name)->id()];
}

TEST(CodeGenTest, LeafProcedureHasNoFrameTraffic) {
  auto R = compileOK("func leaf(a, b) { return a + b; } "
                     "func main() { return leaf(1, 2); }",
                     PaperConfig::C);
  const MProc &Leaf = procOf(*R, "leaf");
  for (const MBlock &B : Leaf.Blocks)
    for (const MInst &I : B.Insts)
      EXPECT_TRUE(I.Op != MOpcode::Load && I.Op != MOpcode::Store)
          << "leaf should be memory-free: " << toString(I);
  EXPECT_EQ(Leaf.FrameWords, 0);
}

TEST(CodeGenTest, NonLeafSavesReturnAddress) {
  auto R = compileOK("func g() { return 1; } "
                     "func f() { return g(); } "
                     "func main() { return f(); }",
                     PaperConfig::Base);
  const MProc &F = procOf(*R, "f");
  bool SavesRA = false;
  for (const MInst &I : F.Blocks[0].Insts)
    SavesRA |= I.Op == MOpcode::Store && I.Rt == RegRA;
  EXPECT_TRUE(SavesRA);
}

TEST(CodeGenTest, SpillCodeRoundTrips) {
  // More simultaneously-live values than registers: some must spill, and
  // the program must still compute correctly.
  std::string Src = "func f(s) {\n";
  for (int I = 0; I < 26; ++I)
    Src += "  var v" + std::to_string(I) + " = s + " + std::to_string(I) +
           ";\n";
  Src += "  var t = 0;\n";
  for (int I = 0; I < 26; ++I)
    Src += "  t = t + v" + std::to_string(I) + " * v" +
           std::to_string((I + 13) % 26) + ";\n";
  Src += "  return t;\n}\nfunc main() { print(f(3)); return 0; }\n";
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::C, PaperConfig::D}) {
    RunStats Stats = compileAndRun(Src, optionsFor(Config));
    ASSERT_TRUE(Stats.OK) << Stats.Error;
    // sum over i of (3+i)*(3+(i+13)%26)
    int64_t Want = 0;
    for (int I = 0; I < 26; ++I)
      Want += (3 + I) * (3 + (I + 13) % 26);
    EXPECT_EQ(Stats.Output, (std::vector<int64_t>{Want}));
  }
}

TEST(CodeGenTest, StackParamsBeyondFour) {
  // Default protocol passes params 5+ on the stack; exercised when
  // register params are disabled.
  CompileOptions Opts = optionsFor(PaperConfig::C);
  Opts.RegisterParams = false;
  const char *Src = R"(
    func sum7(a, b, c, d, e, f, g) {
      return a + 10*b + 100*c + 1000*d + 10000*e + 100000*f + 1000000*g;
    }
    func main() { print(sum7(1, 2, 3, 4, 5, 6, 7)); return 0; }
  )";
  RunStats Stats = compileAndRun(Src, Opts);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{7654321}));
}

TEST(CodeGenTest, GlobalsLiveAtAddressZeroUpward) {
  auto R = compileOK("var a = 5; var t[3]; func main() { return a; }",
                     PaperConfig::Base);
  EXPECT_EQ(R->Program.GlobalOffsets, (std::vector<int64_t>{0, 1}));
  ASSERT_EQ(R->Program.GlobalImage.size(), 4u);
  EXPECT_EQ(R->Program.GlobalImage[0], 5);
}

//===----------------------------------------------------------------------===
// Simulator semantics
//===----------------------------------------------------------------------===

/// Builds a one-procedure program computing Op over two immediates and
/// printing the result.
MProgram aluProgram(MOpcode Op, int64_t A, int64_t B) {
  MProgram Prog;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  MBlock Block;
  Block.Id = 0;
  auto Li = [](unsigned Rd, int64_t V) {
    MInst I(MOpcode::LoadImm);
    I.Rd = uint8_t(Rd);
    I.Imm = V;
    return I;
  };
  Block.Insts.push_back(Li(RegT0, A));
  Block.Insts.push_back(Li(RegT1, B));
  MInst OpI(Op);
  OpI.Rd = RegT2;
  OpI.Rs = RegT0;
  OpI.Rt = RegT1;
  Block.Insts.push_back(OpI);
  MInst Pr(MOpcode::Print);
  Pr.Rs = RegT2;
  Block.Insts.push_back(Pr);
  Block.Insts.push_back(MInst(MOpcode::Ret));
  Main.Blocks.push_back(std::move(Block));
  Prog.Procs.push_back(std::move(Main));
  Prog.MainProcId = 0;
  return Prog;
}

struct AluCase {
  MOpcode Op;
  int64_t A, B, Want;
};

class SimulatorAluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(SimulatorAluTest, ComputesExpected) {
  auto [Op, A, B, Want] = GetParam();
  RunStats Stats = runProgram(aluProgram(Op, A, B));
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{Want}));
}

INSTANTIATE_TEST_SUITE_P(
    Semantics, SimulatorAluTest,
    ::testing::Values(
        AluCase{MOpcode::Add, 3, 4, 7}, AluCase{MOpcode::Sub, 3, 4, -1},
        AluCase{MOpcode::Mul, -3, 4, -12}, AluCase{MOpcode::Div, 7, 2, 3},
        AluCase{MOpcode::Div, -7, 2, -3}, AluCase{MOpcode::Rem, 7, 2, 1},
        AluCase{MOpcode::Rem, -7, 2, -1}, AluCase{MOpcode::And, 6, 3, 2},
        AluCase{MOpcode::Or, 6, 3, 7}, AluCase{MOpcode::Xor, 6, 3, 5},
        AluCase{MOpcode::Shl, 3, 4, 48}, AluCase{MOpcode::Shr, 48, 4, 3},
        AluCase{MOpcode::Shr, -16, 2, -4}, AluCase{MOpcode::CmpEq, 2, 2, 1},
        AluCase{MOpcode::CmpNe, 2, 2, 0}, AluCase{MOpcode::CmpLt, -5, 2, 1},
        AluCase{MOpcode::CmpLe, 2, 2, 1}, AluCase{MOpcode::CmpGt, 3, 2, 1},
        AluCase{MOpcode::CmpGe, 1, 2, 0},
        AluCase{MOpcode::Add, INT64_MAX, 1, INT64_MIN},
        AluCase{MOpcode::Mul, INT64_MAX, 2, -2},
        AluCase{MOpcode::Div, INT64_MIN, -1, INT64_MIN},
        AluCase{MOpcode::Rem, INT64_MIN, -1, 0},
        AluCase{MOpcode::Shl, 1, 100, 0}));

TEST(SimulatorTest, MemoryBoundsChecked) {
  MProgram Prog = aluProgram(MOpcode::Add, 0, 0);
  MInst Bad(MOpcode::Load);
  Bad.Rd = RegT0;
  Bad.Rs = RegZero;
  Bad.Imm = -5;
  Prog.Procs[0].Blocks[0].Insts.insert(Prog.Procs[0].Blocks[0].Insts.begin(),
                                       Bad);
  RunStats Stats = runProgram(Prog);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("out of bounds"), std::string::npos);
}

TEST(SimulatorTest, ZeroRegisterReadsZero) {
  MProgram Prog = aluProgram(MOpcode::Add, 5, 0);
  // Rewrite the op to read $zero as its second operand.
  Prog.Procs[0].Blocks[0].Insts[2].Rt = RegZero;
  // Note: $zero was never written, so it holds its initial 0.
  RunStats Stats = runProgram(Prog);
  ASSERT_TRUE(Stats.OK);
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{5}));
}

} // namespace
