//===- tests/TestRender.h - Byte-exact rendering of compile results -------===//
//
// Renders every observable artifact of a CompileResult into one string so
// differential tests (serial vs parallel, run vs rerun) can assert
// byte-identical output with a single string comparison.
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_TESTS_TESTRENDER_H
#define IPRA_TESTS_TESTRENDER_H

#include "driver/Pipeline.h"

#include <string>

namespace ipra {

inline std::string renderProgram(const CompileResult &Result) {
  const MProgram &Prog = Result.Program;
  std::string Out;
  Out += "main=" + std::to_string(Prog.MainProcId) + "\n";
  Out += "static=" + std::to_string(Result.StaticInstructions) + "\n";
  Out += "globals:";
  for (int64_t W : Prog.GlobalImage)
    Out += " " + std::to_string(W);
  Out += "\noffsets:";
  for (int64_t O : Prog.GlobalOffsets)
    Out += " " + std::to_string(O);
  Out += "\n";
  for (unsigned I = 0; I < Prog.Procs.size(); ++I) {
    const MProc &P = Prog.Procs[I];
    Out += "; proc " + std::to_string(P.Id) + " " + P.Name;
    if (I < Prog.ClobberMasks.size())
      Out += " clobbers " + Prog.ClobberMasks[I].str();
    Out += "\n";
    if (P.IsExternal) {
      Out += "; external\n";
      continue;
    }
    Out += toString(P);
  }
  return Out;
}

} // namespace ipra

#endif // IPRA_TESTS_TESTRENDER_H
