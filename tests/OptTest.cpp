//===- tests/OptTest.cpp - Mid-end pass tests -----------------------------===//

#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

std::unique_ptr<Module> compileOK(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

unsigned countOp(const Procedure &P, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : P)
    for (const Instruction &I : BB->Insts)
      N += I.Op == Op;
  return N;
}

TEST(SimplifyCFGTest, RemovesUnreachableBlocks) {
  auto M = compileOK(R"(
    func f(a) {
      return 1;
      print(a);
    }
  )");
  Procedure *P = M->findProcedure("f");
  unsigned Before = P->numBlocks();
  EXPECT_TRUE(simplifyCFG(*P));
  EXPECT_LT(P->numBlocks(), Before);
  EXPECT_EQ(countOp(*P, Opcode::Print), 0u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verify(*M, Diags)) << Diags.str();
}

TEST(SimplifyCFGTest, FoldsConstantBranch) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock();
  BasicBlock *B2 = P->makeBlock();
  B.setInsertBlock(B0);
  VReg C = B.loadImm(1);
  B.condBr(C, B1, B2);
  B.setInsertBlock(B1);
  B.ret(C);
  B.setInsertBlock(B2);
  B.ret();
  P->recomputeCFG();
  EXPECT_TRUE(simplifyCFG(*P));
  EXPECT_EQ(countOp(*P, Opcode::CondBr), 0u);
  // The false arm is unreachable and merged/removed.
  EXPECT_LE(P->numBlocks(), 2u);
}

TEST(SimplifyCFGTest, MergesStraightLineChains) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock();
  B.setInsertBlock(B0);
  VReg X = B.loadImm(4);
  B.br(B1);
  B.setInsertBlock(B1);
  B.ret(X);
  P->recomputeCFG();
  EXPECT_TRUE(simplifyCFG(*P));
  EXPECT_EQ(P->numBlocks(), 1u);
  EXPECT_EQ(countOp(*P, Opcode::Br), 0u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verify(*P, M, Diags)) << Diags.str();
}

TEST(ConstantFoldTest, FoldsArithmeticChains) {
  auto M = compileOK("func f() { return (2 + 3) * 4 - 6 / 2; }");
  Procedure *P = M->findProcedure("f");
  optimize(*P);
  // Everything folds to "ret 17" preceded by one loadimm.
  ASSERT_EQ(P->numBlocks(), 1u);
  ASSERT_EQ(P->entry()->Insts.size(), 2u);
  EXPECT_EQ(P->entry()->Insts[0].Op, Opcode::LoadImm);
  EXPECT_EQ(P->entry()->Insts[0].Imm, 17);
}

TEST(ConstantFoldTest, FoldsComparisonsAndUnary) {
  auto M = compileOK("func f() { return -(3) + (4 < 5) + !0; }");
  Procedure *P = M->findProcedure("f");
  optimize(*P);
  ASSERT_EQ(P->entry()->Insts[0].Op, Opcode::LoadImm);
  EXPECT_EQ(P->entry()->Insts[0].Imm, -1);
}

TEST(ConstantFoldTest, DivisionByZeroDoesNotFoldToTrap) {
  auto M = compileOK("func f() { return 1 / 0; }");
  Procedure *P = M->findProcedure("f");
  optimize(*P); // must not crash; folds to the defined value 0
  EXPECT_EQ(P->entry()->Insts[0].Imm, 0);
}

TEST(ConstantFoldTest, KillsKnowledgeOnRedefinition) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg X = P->makeVReg();
  B.loadImmTo(X, 1);
  VReg Cond = B.loadImm(0);
  // X is redefined by a non-constant op: later use must not fold as 1.
  Instruction Redef(Opcode::Add);
  Redef.Dst = X;
  Redef.Src1 = Cond;
  Redef.Src2 = Cond;
  P->entry()->Insts.push_back(Redef);
  VReg Y = B.addImm(X, 0);
  B.ret(Y);
  P->recomputeCFG();
  foldConstants(*P);
  // addimm of X must not have been folded to 1: X is 0+0 = foldable
  // actually, but through the Add, so the result is 0, not 1.
  const Instruction &RetI = P->entry()->Insts.back();
  ASSERT_EQ(RetI.Op, Opcode::Ret);
  bool FoldedToOne = false;
  for (const Instruction &I : P->entry()->Insts)
    if (I.Op == Opcode::LoadImm && I.def() == Y && I.Imm == 1)
      FoldedToOne = true;
  EXPECT_FALSE(FoldedToOne);
}

TEST(CopyPropTest, RewritesUses) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg A = B.loadImm(3);
  VReg C = B.copy(A);
  VReg D = B.addImm(C, 1);
  B.ret(D);
  P->recomputeCFG();
  EXPECT_TRUE(propagateCopies(*P));
  EXPECT_EQ(P->entry()->Insts[2].Src1, A);
}

TEST(CopyPropTest, StopsAtSourceRedefinition) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg A = P->makeVReg();
  B.loadImmTo(A, 3);
  VReg C = B.copy(A);
  B.loadImmTo(A, 9); // A redefined: C != A from here on
  VReg D = B.addImm(C, 1);
  B.ret(D);
  P->recomputeCFG();
  propagateCopies(*P);
  const Instruction &AddI = P->entry()->Insts[3];
  ASSERT_EQ(AddI.Op, Opcode::AddImm);
  EXPECT_EQ(AddI.Src1, C) << "must still read the copy, not the new A";
}

TEST(DeadCodeTest, RemovesUnusedPureOps) {
  auto M = compileOK(R"(
    var g;
    func f(a) {
      var unused = a * 1234;
      var kept = g;
      g = kept + 1;
      return a;
    }
  )");
  Procedure *P = M->findProcedure("f");
  EXPECT_TRUE(eliminateDeadCode(*P));
  EXPECT_EQ(countOp(*P, Opcode::Mul), 0u);
  // The global update has side effects and must stay.
  EXPECT_EQ(countOp(*P, Opcode::StoreGlobal), 1u);
}

TEST(DeadCodeTest, KeepsCallsWithUnusedResults) {
  auto M = compileOK(R"(
    var g;
    func bump() { g = g + 1; return g; }
    func f() { bump(); return 0; }
  )");
  Procedure *P = M->findProcedure("f");
  eliminateDeadCode(*P);
  EXPECT_EQ(countOp(*P, Opcode::Call), 1u);
}

TEST(DeadCodeTest, CascadingRemoval) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg A = B.loadImm(1);
  VReg C = B.addImm(A, 2); // feeds only the dead D
  VReg D = B.addImm(C, 3); // dead
  (void)D;
  B.ret();
  P->recomputeCFG();
  EXPECT_TRUE(eliminateDeadCode(*P));
  EXPECT_EQ(P->entry()->Insts.size(), 1u) << "whole chain removed";
}

TEST(OptimizeTest, PipelineShrinksTypicalFunction) {
  auto M = compileOK(R"(
    func f(n) {
      var a = 2 * 3;
      var b = a;
      var s = 0;
      if (1) { s = b + n; }
      return s;
    }
  )");
  Procedure *P = M->findProcedure("f");
  unsigned Before = P->instructionCount();
  optimize(*P);
  EXPECT_LT(P->instructionCount(), Before);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verify(*M, Diags)) << Diags.str();
  EXPECT_EQ(countOp(*P, Opcode::CondBr), 0u) << "if(1) folded";
}

TEST(OptimizeTest, WholeModuleVerifiesAfterOptimize) {
  auto M = compileOK(R"(
    func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    func main() { print(fib(10)); return 0; }
  )");
  optimize(*M);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verify(*M, Diags)) << Diags.str();
}

} // namespace
