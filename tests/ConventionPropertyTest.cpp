//===- tests/ConventionPropertyTest.cpp - Conventions-as-data property ----===//
//
// The conventions-as-data contract, tested as a property: for hundreds of
// randomized valid ConventionSpecs, compiling a small program suite must
// (1) succeed with zero MIR-verifier violations -- the PR-4 verifier is
// the oracle that the generated code honours whatever summaries and
// linkage protocol the convention induces -- (2) pass the simulator's
// dynamic convention check at every call, and (3) compute exactly the
// answers the default convention computes. Conventions change cost, never
// meaning.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "ConventionGen.h"
#include "ProgramGenerator.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace ipra;

namespace {

/// Small fixed suite: recursion, register pressure, >4 arguments (stack
/// parameters under the default protocol), loops and call chains.
const std::vector<std::string> &smallSuite() {
  static const std::vector<std::string> Suite = {
      R"(
        func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        func main() { print(fib(12)); return 0; }
      )",
      R"(
        func wide(a, b, c, d, e, f, g) { return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g; }
        func mid(x, y) { return wide(x, y, x+y, x-y, x*y, x, y); }
        func main() {
          var i = 0; var acc = 0;
          while (i < 10) { acc = acc + mid(i, i+1); i = i + 1; }
          print(acc); return 0;
        }
      )",
      R"(
        func leaf(x) { return x * 3 - 1; }
        func chain(n) {
          var a = leaf(n); var b = leaf(a); var c = leaf(b);
          var d = a*b + b*c + c*a;
          return d - leaf(d);
        }
        func pressure(n) {
          var p = n + 1; var q = n + 2; var r = n + 3; var s = n + 4;
          var t = chain(n);
          return p*q + r*s + t + p*r + q*s;
        }
        func main() { print(pressure(7) + chain(3)); return 0; }
      )",
      R"(
        func gcd(a, b) { if (b == 0) { return a; } return gcd(b, a - (a / b) * b); }
        func main() {
          var i = 1; var acc = 0;
          while (i < 12) { acc = acc + gcd(504, i * 7); i = i + 1; }
          print(acc); return 0;
        }
      )",
  };
  return Suite;
}

struct Outcome {
  std::vector<int64_t> Output;
  bool Skipped = false; // generated program blew the step budget
};

/// Compiles and runs one program under \p Spec; asserts the verifier and
/// the dynamic checker stay silent. Returns the observable output.
Outcome compileRunChecked(const std::string &Src, const ConventionSpec &Spec,
                          unsigned Threads, const std::string &Label) {
  CompileOptions Opts = optionsFor(PaperConfig::C);
  Opts.Convention = Spec;
  Opts.Threads = Threads;
  DiagnosticEngine Diags;
  auto Result = compileProgram(Src, Opts, Diags);
  EXPECT_NE(Result, nullptr) << Label << ": " << Diags.str();
  Outcome Out;
  if (!Result)
    return Out;
  // Zero MIR-verifier violations: the verifier runs inside the pipeline
  // (VerifyMIR defaults on) and reports through the diagnostic engine.
  EXPECT_FALSE(Diags.hasErrors()) << Label << ":\n" << Diags.str();
  EXPECT_EQ(Result->Stats.Module.get("verify.violations"), 0u) << Label;

  SimOptions SOpts;
  SOpts.CheckConventions = true;
  SOpts.MaxSteps = 20 * 1000 * 1000;
  RunStats Stats = runProgram(Result->Program, SOpts);
  if (!Stats.OK && Stats.Error.find("budget") != std::string::npos) {
    Out.Skipped = true;
    return Out;
  }
  EXPECT_TRUE(Stats.OK) << Label << ": " << Stats.Error;
  Out.Output = Stats.Output;
  return Out;
}

/// 10 shards x 20 specs = 200 randomized conventions.
class ConventionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConventionPropertyTest, RandomConventionsAreDataSafe) {
  std::mt19937 Rng(0xC0DE0000u + uint32_t(GetParam()));
  for (int Case = 0; Case < 20; ++Case) {
    ConventionSpec Spec = randomConventionSpec(Rng);
    ASSERT_TRUE(Spec.validate()) << Spec.str();
    // The spelling round-trips for every generated spec, too.
    ConventionSpec Reparsed;
    std::string Err;
    ASSERT_TRUE(ConventionSpec::parse(Spec.str(), Reparsed, Err))
        << Spec.str() << ": " << Err;
    ASSERT_EQ(Reparsed, Spec) << Spec.str();

    // A third of the cases drive the DAG-scheduled back end.
    unsigned Threads = Case % 3 == 0 ? 2 : 0;
    std::string Label = "spec '" + Spec.str() + "'";
    for (size_t I = 0; I < smallSuite().size(); ++I) {
      const std::string &Src = smallSuite()[I];
      Outcome Default = compileRunChecked(
          Src, ConventionSpec::defaultSpec(), 0,
          Label + " prog " + std::to_string(I) + " (default)");
      Outcome Under = compileRunChecked(
          Src, Spec, Threads, Label + " prog " + std::to_string(I));
      ASSERT_FALSE(Default.Skipped || Under.Skipped);
      ASSERT_EQ(Under.Output, Default.Output)
          << "MISCOMPILE under " << Label << " on program " << I;
    }
    // One generated program per spec for structural variety.
    ProgramGenerator Gen(0x51EED000u + uint32_t(GetParam() * 100 + Case));
    std::string Src = Gen.generate();
    Outcome Default = compileRunChecked(Src, ConventionSpec::defaultSpec(),
                                        0, Label + " gen (default)");
    Outcome Under = compileRunChecked(Src, Spec, Threads, Label + " gen");
    if (!Default.Skipped && !Under.Skipped) {
      ASSERT_EQ(Under.Output, Default.Output)
          << "MISCOMPILE under " << Label << "\n" << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ConventionPropertyTest,
                         ::testing::Range(0, 10));

} // namespace
