//===- tests/NativeEngineTest.cpp - JIT vs. interpreter differentials -----===//
//
// The native engine's contract (DESIGN.md section 14): instrumented runs
// are byte-identical RunStats with both interpreters on every program --
// outcome, error text, exit value, output, every pixie counter and the
// block profile. This suite proves it the same four ways the decoded
// engine earned its stripes in SimEngineTest.cpp: the whole benchmark
// suite x all six paper configurations in the strongest checking mode; a
// randomized differential sweep x configurations x checking modes; an
// exhaustive execution-budget walk across the MaxSteps boundary (the
// bail-to-careful-tail edge); and hand-built MIR for every runtime-error
// path the JIT lowers to stubs (division, bounds, call targets, depth).
// A further group pins the raw mode's contract (exact counters on clean
// runs, approximate budget, profiling/conventions rejected), the
// unsupported-host and kill-switch guard rails, and BatchRunner fan-out
// determinism with the native engine.
//
// Every test that executes JIT code skips cleanly (with the engine's own
// reason string) on hosts where nativeEngineSupported() is false.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "sim/BatchRunner.h"
#include "x64/NativeEngine.h"

#include "ProgramGenerator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace ipra;

namespace {

#define SKIP_WITHOUT_NATIVE()                                                  \
  do {                                                                         \
    std::string Why;                                                           \
    if (!nativeEngineSupported(&Why))                                          \
      GTEST_SKIP() << Why;                                                     \
  } while (0)

std::string describe(const char *Tag, const RunStats &S) {
  std::string D = std::string("  ") + Tag + ": OK=" + (S.OK ? "1" : "0") +
                  " err='" + S.Error + "' exit=" + std::to_string(S.ExitValue) +
                  " cycles=" + std::to_string(S.Cycles) +
                  " insts=" + std::to_string(S.Instructions) + " scalar=" +
                  std::to_string(S.ScalarLoads) + "/" +
                  std::to_string(S.ScalarStores) + " data=" +
                  std::to_string(S.DataLoads) + "/" +
                  std::to_string(S.DataStores) +
                  " calls=" + std::to_string(S.Calls) +
                  " out=" + std::to_string(S.Output.size());
  return D;
}

/// Runs \p Prog under all three engines (native instrumented) and demands
/// byte-identical RunStats across the board.
void expectThreeWayAgree(const MProgram &Prog, SimOptions Opts,
                         const std::string &What) {
  Opts.NativeRaw = false;
  Opts.Engine = SimEngine::Reference;
  RunStats Ref = runProgram(Prog, Opts);
  Opts.Engine = SimEngine::Decoded;
  RunStats Dec = runProgram(Prog, Opts);
  Opts.Engine = SimEngine::Native;
  RunStats Nat = runProgram(Prog, Opts);
  EXPECT_TRUE(Ref.sameExecution(Nat))
      << What << ":\n"
      << describe("reference", Ref) << "\n"
      << describe("native   ", Nat);
  EXPECT_TRUE(Dec.sameExecution(Nat))
      << What << ":\n"
      << describe("decoded", Dec) << "\n"
      << describe("native ", Nat);
}

const std::pair<bool, bool> CheckModes[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

// The acceptance sweep: every real suite program under every paper
// configuration, profiles + conventions both on (the checked-return and
// profiled-block lowering paths carry the load).
class NativeSuiteTest : public ::testing::TestWithParam<BenchmarkProgram> {};

TEST_P(NativeSuiteTest, WholeSuiteAllConfigsThreeWay) {
  SKIP_WITHOUT_NATIVE();
  const BenchmarkProgram &B = GetParam();
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
        PaperConfig::D, PaperConfig::E}) {
    DiagnosticEngine Diags;
    auto Compiled = compileProgram(B.Source, optionsFor(Config), Diags);
    ASSERT_NE(Compiled, nullptr)
        << B.Name << " under " << paperConfigName(Config) << ":\n"
        << Diags.str();
    SimOptions Opts;
    Opts.CollectBlockProfile = true;
    Opts.CheckConventions = true;
    expectThreeWayAgree(Compiled->Program, Opts,
                        std::string(B.Name) + " under " +
                            paperConfigName(Config));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, NativeSuiteTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &Info) {
      return std::string(Info.param.Name);
    });

// Randomized differential: generated programs x configurations x all four
// checking-mode combinations (each selects different lowering variants:
// profiled block heads, convention snapshots and checked returns).
class NativeDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeDifferentialTest, RandomProgramsAllConfigsAllModes) {
  SKIP_WITHOUT_NATIVE();
  for (int Trial = 0; Trial < 2; ++Trial) {
    // Same seed formula as SimEngineTest so a divergence here and not
    // there isolates the JIT, not the program shape.
    uint32_t Seed = uint32_t(42000 + GetParam() * 1000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    for (PaperConfig Config :
         {PaperConfig::Base, PaperConfig::B, PaperConfig::C, PaperConfig::E}) {
      DiagnosticEngine Diags;
      auto Compiled = compileProgram(Src, optionsFor(Config), Diags);
      ASSERT_NE(Compiled, nullptr)
          << "seed " << Seed << " under " << paperConfigName(Config) << ":\n"
          << Diags.str();
      for (auto [Profile, Check] : CheckModes) {
        SimOptions Opts;
        Opts.MaxSteps = 2 * 1000 * 1000;
        Opts.CollectBlockProfile = Profile;
        Opts.CheckConventions = Check;
        expectThreeWayAgree(Compiled->Program, Opts,
                            "seed " + std::to_string(Seed) + " under " +
                                paperConfigName(Config) + " profile=" +
                                std::to_string(Profile) + " conventions=" +
                                std::to_string(Check));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NativeDifferentialTest,
                         ::testing::Values(1, 2, 3));

// Walks the execution budget one instruction at a time across a program
// with calls, branches and memory traffic. Every budget value must fail
// (or succeed) at the same instruction with the same error, the same
// partial counters and the same partial block profile as the reference
// interpreter. This is the hardest native edge: budgets landing inside a
// block trip the block-head test, bail out to the careful C++ tail, and
// the tail must then fail (or finish) exactly like the interpreter.
TEST(NativeBudgetTest, ExhaustiveBudgetBoundarySweep) {
  SKIP_WITHOUT_NATIVE();
  const char *Src = R"(
var g = 3;
func mix(a, b) {
  var s = a * 2;
  if (s > b) { s = s - b; } else { s = s + b; }
  return s + g;
}
func main() {
  var acc = 0;
  for (var i = 0; i < 6; i = i + 1) {
    acc = acc + mix(i, acc);
    g = g + 1;
  }
  print(acc);
  return acc;
}
)";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Full;
  Full.MemWords = 1u << 16;
  Full.CollectBlockProfile = true;
  Full.CheckConventions = true;
  Full.Engine = SimEngine::Reference;
  RunStats Whole = runProgram(Compiled->Program, Full);
  ASSERT_TRUE(Whole.OK) << Whole.Error;
  ASSERT_LT(Whole.Instructions, 5000u) << "keep the sweep cheap";

  uint64_t Bailouts = 0;
  for (uint64_t Budget = 0; Budget <= Whole.Instructions + 2; ++Budget) {
    SimOptions Opts = Full;
    Opts.MaxSteps = Budget;
    expectThreeWayAgree(Compiled->Program, Opts,
                        "budget " + std::to_string(Budget) + " of " +
                            std::to_string(Whole.Instructions));
    Opts.Engine = SimEngine::Native;
    Bailouts += runProgram(Compiled->Program, Opts).NativeBailouts;
  }
  // The sweep is only meaningful if it actually drove the careful tail.
  EXPECT_GT(Bailouts, 0u);
}

// Hand-built MIR for the runtime-error paths the JIT lowers to error
// stubs, plus the value edge cases with dedicated instruction sequences
// (INT64_MIN division, out-of-range shifts, wrap-around). Error messages
// must match byte-for-byte, including the location suffix.
class NativeErrorTest : public ::testing::Test {
protected:
  void SetUp() override { SKIP_WITHOUT_NATIVE(); }

  static MProgram oneBlockProgram(std::vector<MInst> Insts) {
    MProgram Prog;
    MProc Main;
    Main.Name = "main";
    Main.Id = 0;
    MBlock B;
    B.Id = 0;
    Insts.push_back(MInst(MOpcode::Ret));
    B.Insts = std::move(Insts);
    Main.Blocks.push_back(std::move(B));
    Prog.Procs.push_back(std::move(Main));
    Prog.MainProcId = 0;
    return Prog;
  }

  static MInst loadImm(uint8_t Rd, int64_t Imm) {
    MInst I(MOpcode::LoadImm);
    I.Rd = Rd;
    I.Imm = Imm;
    return I;
  }
};

TEST_F(NativeErrorTest, OutOfBoundsLoadAndStore) {
  MInst Load(MOpcode::Load);
  Load.Rd = RegT1;
  Load.Rs = RegT0;
  Load.Imm = -7;
  expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, 2), Load}), {},
                      "negative load address");

  MInst Store(MOpcode::Store);
  Store.Rs = RegT0;
  Store.Rt = RegT0;
  Store.Imm = 1;
  SimOptions Small;
  Small.MemWords = 64;
  expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, 64), Store}), Small,
                      "store past the top of memory");
}

TEST_F(NativeErrorTest, DivisionAndRemainderEdges) {
  for (MOpcode Op : {MOpcode::Div, MOpcode::Rem}) {
    MInst I(Op);
    I.Rd = RegT2;
    I.Rs = RegT0;
    I.Rt = RegT1;
    expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, 5), I}), {},
                        "divide/remainder by zero (t1 stays 0)");
    // INT64_MIN / -1: idiv would fault on the host; the JIT must take
    // the RT==-1 special path and pin the interpreter's result.
    MInst Print(MOpcode::Print);
    Print.Rs = RegT2;
    expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, INT64_MIN),
                                         loadImm(RegT1, -1), I, Print}),
                        {}, "INT64_MIN / -1");
  }
}

TEST_F(NativeErrorTest, BadAndExternalCallTargets) {
  MInst BadCall(MOpcode::Call);
  BadCall.Callee = 7; // out of range: resolved to a stub at JIT time
  expectThreeWayAgree(oneBlockProgram({BadCall}), {}, "call to invalid id");

  MProgram Ext = oneBlockProgram({});
  MProc External;
  External.Name = "printf";
  External.Id = 1;
  External.IsExternal = true;
  Ext.Procs.push_back(std::move(External));
  MInst ExtCall(MOpcode::Call);
  ExtCall.Callee = 1;
  Ext.Procs[0].Blocks[0].Insts.insert(Ext.Procs[0].Blocks[0].Insts.begin(),
                                      ExtCall);
  expectThreeWayAgree(Ext, {}, "call to external procedure");

  // Indirect forms go through the runtime procedure table, including the
  // sign-extending int cast of the register value.
  MInst IndBad(MOpcode::CallInd);
  IndBad.Rs = RegT0;
  expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, -3), IndBad}), {},
                      "indirect call to invalid id");
  expectThreeWayAgree(
      oneBlockProgram({loadImm(RegT0, int64_t(1) << 32), IndBad}), {},
      "indirect call id truncated to int (1<<32 -> 0 -> recursion guard)");
  MInst IndExt(MOpcode::CallInd);
  IndExt.Rs = RegT0;
  MProgram Ext2 = oneBlockProgram({loadImm(RegT0, 1), IndExt});
  MProc External2;
  External2.Name = "malloc";
  External2.Id = 1;
  External2.IsExternal = true;
  Ext2.Procs.push_back(std::move(External2));
  expectThreeWayAgree(Ext2, {}, "indirect call to external procedure");
}

TEST_F(NativeErrorTest, CallDepthExceeded) {
  MInst Recurse(MOpcode::Call);
  Recurse.Callee = 0;
  SimOptions Opts;
  Opts.MaxCallDepth = 9;
  expectThreeWayAgree(oneBlockProgram({Recurse}), Opts, "call depth");
  // Same with the indirect form (a separate depth-check emission site).
  MInst IndRecurse(MOpcode::CallInd);
  IndRecurse.Rs = RegT0;
  expectThreeWayAgree(oneBlockProgram({loadImm(RegT0, 0), IndRecurse}), Opts,
                      "indirect call depth");
}

TEST_F(NativeErrorTest, ShiftRangeAndWrapArithmetic) {
  std::vector<MInst> Insts;
  Insts.push_back(loadImm(RegT0, INT64_MAX));
  Insts.push_back(loadImm(RegT1, 63));
  for (MOpcode Op : {MOpcode::Shl, MOpcode::Shr, MOpcode::Add}) {
    MInst I(Op);
    I.Rd = RegT2;
    I.Rs = RegT0;
    I.Rt = Op == MOpcode::Add ? RegT0 : RegT1;
    Insts.push_back(I);
    MInst Print(MOpcode::Print);
    Print.Rs = RegT2;
    Insts.push_back(Print);
  }
  // And a negative shift amount (must also produce 0, via the unsigned
  // range compare).
  Insts.push_back(loadImm(RegT1, -1));
  MInst NegShift(MOpcode::Shl);
  NegShift.Rd = RegT2;
  NegShift.Rs = RegT0;
  NegShift.Rt = RegT1;
  Insts.push_back(NegShift);
  MInst Print(MOpcode::Print);
  Print.Rs = RegT2;
  Insts.push_back(Print);
  expectThreeWayAgree(oneBlockProgram(std::move(Insts)), {},
                      "shift range and wrap-around");
}

//===----------------------------------------------------------------------===//
// Raw mode: exact pixie counters on clean runs, approximate budget
// enforcement on runaways, profiling/conventions rejected up front.
//===----------------------------------------------------------------------===//

TEST(NativeRawTest, CleanRunsMatchInstrumentedExactly) {
  SKIP_WITHOUT_NATIVE();
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    DiagnosticEngine Diags;
    auto Compiled =
        compileProgram(B.Source, optionsFor(PaperConfig::C), Diags);
    ASSERT_NE(Compiled, nullptr) << B.Name << ":\n" << Diags.str();
    SimOptions Opts;
    Opts.Engine = SimEngine::Decoded;
    RunStats Dec = runProgram(Compiled->Program, Opts);
    ASSERT_TRUE(Dec.OK) << B.Name << ": " << Dec.Error;
    Opts.Engine = SimEngine::Native;
    Opts.NativeRaw = true;
    RunStats Raw = runProgram(Compiled->Program, Opts);
    EXPECT_TRUE(Dec.sameExecution(Raw))
        << B.Name << ":\n"
        << describe("decoded", Dec) << "\n"
        << describe("raw    ", Raw);
  }
}

TEST(NativeRawTest, RunawayLoopStillHitsTheBudget) {
  SKIP_WITHOUT_NATIVE();
  // main: block 0 branches to itself forever. Raw mode checks the budget
  // at back-edge targets, so this must terminate with the exact budget
  // error (which carries no location suffix, in every engine).
  MProgram Prog;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  MBlock B;
  B.Id = 0;
  MInst Br(MOpcode::Br);
  Br.Target1 = 0;
  B.Insts.push_back(Br);
  Main.Blocks.push_back(std::move(B));
  Prog.Procs.push_back(std::move(Main));
  Prog.MainProcId = 0;

  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  Opts.NativeRaw = true;
  Opts.MaxSteps = 10000;
  RunStats Raw = runProgram(Prog, Opts);
  EXPECT_FALSE(Raw.OK);
  EXPECT_EQ(Raw.Error, "execution budget exceeded (infinite loop?)");
  // Raw charging is per whole block, so the step count lands within one
  // block length of the budget, never below it.
  EXPECT_GE(Raw.Instructions, Opts.MaxSteps);
  EXPECT_LE(Raw.Instructions, Opts.MaxSteps + 1);
}

TEST(NativeRawTest, RejectsProfilingAndConventionChecking) {
  SKIP_WITHOUT_NATIVE();
  MProgram Prog;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  MBlock B;
  B.Id = 0;
  B.Insts.push_back(MInst(MOpcode::Ret));
  Main.Blocks.push_back(std::move(B));
  Prog.Procs.push_back(std::move(Main));
  Prog.MainProcId = 0;

  for (auto [Profile, Check] :
       {std::pair{true, false}, {false, true}, {true, true}}) {
    SimOptions Opts;
    Opts.Engine = SimEngine::Native;
    Opts.NativeRaw = true;
    Opts.CollectBlockProfile = Profile;
    Opts.CheckConventions = Check;
    RunStats S = runProgram(Prog, Opts);
    EXPECT_FALSE(S.OK);
    EXPECT_EQ(S.Error,
              "native raw mode supports neither block profiling nor "
              "convention checking; use the instrumented native engine");
  }
}

//===----------------------------------------------------------------------===//
// Guard rails: kill switch, depth cap, missing main.
//===----------------------------------------------------------------------===//

TEST(NativeGuardTest, KillSwitchYieldsCleanError) {
  SKIP_WITHOUT_NATIVE(); // the disable reason must win over others below
  ASSERT_EQ(setenv("IPRA_NATIVE_DISABLE", "1", 1), 0);
  std::string Why;
  EXPECT_FALSE(nativeEngineSupported(&Why));
  EXPECT_EQ(Why, "native engine disabled by IPRA_NATIVE_DISABLE");

  MProgram Prog;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  MBlock B;
  B.Id = 0;
  B.Insts.push_back(MInst(MOpcode::Ret));
  Main.Blocks.push_back(std::move(B));
  Prog.Procs.push_back(std::move(Main));
  Prog.MainProcId = 0;
  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  RunStats S = runProgram(Prog, Opts);
  EXPECT_FALSE(S.OK);
  EXPECT_EQ(S.Error, Why);

  ASSERT_EQ(unsetenv("IPRA_NATIVE_DISABLE"), 0);
  // "0" means enabled, same as unset.
  ASSERT_EQ(setenv("IPRA_NATIVE_DISABLE", "0", 1), 0);
  std::string Why2;
  bool Supported = nativeEngineSupported(&Why2);
  ASSERT_EQ(unsetenv("IPRA_NATIVE_DISABLE"), 0);
  EXPECT_EQ(Supported, nativeEngineSupported());
}

TEST(NativeGuardTest, OversizedCallDepthRejected) {
  SKIP_WITHOUT_NATIVE();
  MProgram Prog;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  MBlock B;
  B.Id = 0;
  B.Insts.push_back(MInst(MOpcode::Ret));
  Main.Blocks.push_back(std::move(B));
  Prog.Procs.push_back(std::move(Main));
  Prog.MainProcId = 0;
  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  Opts.MaxCallDepth = NativeMaxCallDepth + 1;
  RunStats S = runProgram(Prog, Opts);
  EXPECT_FALSE(S.OK);
  EXPECT_NE(S.Error.find("host-stack budget"), std::string::npos) << S.Error;
  // At the cap itself the run goes through.
  Opts.MaxCallDepth = NativeMaxCallDepth;
  RunStats OK = runProgram(Prog, Opts);
  EXPECT_TRUE(OK.OK) << OK.Error;
}

TEST(NativeGuardTest, MissingMainMatchesInterpreters) {
  // Checked before any JIT machinery, so no SKIP needed; the message must
  // be the interpreters' exact text.
  MProgram Empty;
  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  RunStats S = runProgram(Empty, Opts);
  EXPECT_FALSE(S.OK);
  EXPECT_EQ(S.Error, "program has no main procedure");

  MProgram External;
  MProc Main;
  Main.Name = "main";
  Main.Id = 0;
  Main.IsExternal = true;
  External.Procs.push_back(std::move(Main));
  External.MainProcId = 0;
  RunStats S2 = runProgram(External, Opts);
  EXPECT_FALSE(S2.OK);
  EXPECT_EQ(S2.Error, "main procedure has no body");
}

//===----------------------------------------------------------------------===//
// Code cache: every codegen-relevant option keys the cache.
//===----------------------------------------------------------------------===//

// Flips each option that changes what the JIT emits -- raw mode, the
// register-map policy, native verification -- while running one program
// repeatedly in the same process. The second pass is served from the
// cache, and each flip must still surface an image compiled under
// exactly the requested options: the static image counters (code bytes,
// pins, call-sync stores, audited procedures) are the fingerprint a
// stale image would smudge.
TEST(NativeCacheTest, CodegenOptionsKeyTheCodeCache) {
  SKIP_WITHOUT_NATIVE();
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  struct Shape {
    uint64_t CodeBytes, Pins, SyncStores, VerifiedProcs;
    bool operator==(const Shape &O) const {
      return CodeBytes == O.CodeBytes && Pins == O.Pins &&
             SyncStores == O.SyncStores && VerifiedProcs == O.VerifiedProcs;
    }
  };
  auto shapeOf = [](const RunStats &S) {
    return Shape{S.NativeCodeBytes, S.NativeMapPins, S.NativeMapSyncStores,
                 S.NativeVerifiedProcs};
  };

  std::vector<SimOptions> Combos;
  for (bool Raw : {false, true})
    for (bool PerProc : {false, true})
      for (bool Verify : {false, true}) {
        SimOptions O;
        O.Engine = SimEngine::Native;
        O.NativeRaw = Raw;
        O.NativeMap = PerProc ? SimOptions::NativeMapPolicy::PerProc
                              : SimOptions::NativeMapPolicy::Global;
        O.VerifyNative = Verify;
        Combos.push_back(O);
      }

  std::vector<Shape> First;
  for (const SimOptions &O : Combos) {
    RunStats S = runProgram(Compiled->Program, O);
    ASSERT_TRUE(S.OK) << S.Error;
    // The request must be honoured on the cold compile already.
    EXPECT_EQ(S.NativeMapSyncStores > 0,
              O.NativeMap == SimOptions::NativeMapPolicy::PerProc);
    EXPECT_EQ(S.NativeVerifiedProcs > 0, O.VerifyNative);
    First.push_back(shapeOf(S));
  }
  for (size_t I = 0; I < Combos.size(); ++I) {
    RunStats S = runProgram(Compiled->Program, Combos[I]);
    ASSERT_TRUE(S.OK) << S.Error;
    EXPECT_TRUE(shapeOf(S) == First[I])
        << "combo " << I << " served a stale image: bytes "
        << S.NativeCodeBytes << "/" << First[I].CodeBytes << ", pins "
        << S.NativeMapPins << "/" << First[I].Pins << ", syncs "
        << S.NativeMapSyncStores << "/" << First[I].SyncStores
        << ", verified " << S.NativeVerifiedProcs << "/"
        << First[I].VerifiedProcs;
  }
}

// Fan-out determinism: the same job list through BatchRunner with the
// native engine must reproduce the inline baseline at any thread count
// (each run JITs its own buffer; nothing may be shared mutable state).
TEST(NativeBatchTest, DeterministicAcrossThreadCounts) {
  SKIP_WITHOUT_NATIVE();
  std::vector<std::unique_ptr<CompileResult>> Compiled;
  for (uint32_t Seed : {9301u, 9302u, 9303u}) {
    ProgramGenerator Gen(Seed);
    DiagnosticEngine Diags;
    auto Result = compileProgram(Gen.generate(), optionsFor(PaperConfig::C),
                                 Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    Compiled.push_back(std::move(Result));
  }
  std::vector<const MProgram *> Progs;
  for (int Copy = 0; Copy < 2; ++Copy)
    for (const auto &Result : Compiled)
      Progs.push_back(&Result->Program);

  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  Opts.CollectBlockProfile = true;
  sim::BatchRunner Inline(0);
  std::vector<RunStats> Baseline = Inline.runPrograms(Progs, Opts);
  ASSERT_EQ(Baseline.size(), Progs.size());
  for (const RunStats &S : Baseline)
    ASSERT_TRUE(S.OK) << S.Error;

  for (unsigned Threads : {1u, 4u}) {
    sim::BatchRunner Runner(Threads);
    std::vector<RunStats> Results = Runner.runPrograms(Progs, Opts);
    ASSERT_EQ(Results.size(), Baseline.size()) << Threads << " threads";
    for (size_t I = 0; I < Results.size(); ++I)
      EXPECT_TRUE(Results[I].sameExecution(Baseline[I]))
          << "slot " << I << " at " << Threads << " threads";
  }
}

} // namespace
