//===- tests/SimEngineTest.cpp - Reference vs. Decoded engine equivalence -===//
//
// The decoded engine's contract is byte-identical RunStats with the
// reference interpreter on every program (RunStats::sameExecution:
// outcome, error text, output, every pixie counter, block profiles).
// This suite proves it four ways: a randomized differential sweep over
// generated programs x all six paper configurations x every checking-mode
// combination; the whole 13-program benchmark suite x all six
// configurations in the strongest checking mode; an exhaustive
// execution-budget sweep that walks the
// MaxSteps boundary one instruction at a time (the careful-tail-loop
// edge cases, including budgets landing inside a fused superop); and
// hand-built MIR for every runtime-error path the decoder special-cases
// (bad/external call targets, indirect calls, out-of-bounds traffic).
// A final group pins the BatchRunner's deterministic result ordering at
// 0/1/4 threads (run under TSan via the "parallel" label).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "sim/BatchRunner.h"

#include "ProgramGenerator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ipra;

namespace {

/// Compares one program under both engines with the given checking modes;
/// every RunStats field the paper measures must match exactly.
void expectEnginesAgree(const MProgram &Prog, SimOptions Opts,
                        const std::string &What) {
  Opts.Engine = SimEngine::Reference;
  RunStats Ref = runProgram(Prog, Opts);
  Opts.Engine = SimEngine::Decoded;
  RunStats Dec = runProgram(Prog, Opts);
  EXPECT_TRUE(Ref.sameExecution(Dec))
      << What << ":\n  reference: OK=" << Ref.OK << " err='" << Ref.Error
      << "' cycles=" << Ref.Cycles << " scalar=" << Ref.ScalarLoads << "/"
      << Ref.ScalarStores << " data=" << Ref.DataLoads << "/"
      << Ref.DataStores << " calls=" << Ref.Calls << "\n  decoded:   OK="
      << Dec.OK << " err='" << Dec.Error << "' cycles=" << Dec.Cycles
      << " scalar=" << Dec.ScalarLoads << "/" << Dec.ScalarStores
      << " data=" << Dec.DataLoads << "/" << Dec.DataStores
      << " calls=" << Dec.Calls;
}

/// All four checking-mode combinations: each selects different decoded op
/// variants (profiled branches/calls, checked returns), so all four
/// decode paths must hold the contract.
const std::pair<bool, bool> CheckModes[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

class SimEngineDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SimEngineDifferentialTest, RandomProgramsAllConfigsAllModes) {
  for (int Trial = 0; Trial < 4; ++Trial) {
    uint32_t Seed = uint32_t(42000 + GetParam() * 1000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    for (PaperConfig Config :
         {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
          PaperConfig::D, PaperConfig::E}) {
      DiagnosticEngine Diags;
      auto Compiled = compileProgram(Src, optionsFor(Config), Diags);
      ASSERT_NE(Compiled, nullptr)
          << "seed " << Seed << " under " << paperConfigName(Config) << ":\n"
          << Diags.str();
      for (auto [Profile, Check] : CheckModes) {
        SimOptions Opts;
        Opts.MaxSteps = 2 * 1000 * 1000;
        Opts.CollectBlockProfile = Profile;
        Opts.CheckConventions = Check;
        expectEnginesAgree(Compiled->Program, Opts,
                           "seed " + std::to_string(Seed) + " under " +
                               paperConfigName(Config) + " profile=" +
                               std::to_string(Profile) + " conventions=" +
                               std::to_string(Check));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimEngineDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The acceptance sweep: every real suite program under every paper
// configuration, in the strongest checking mode (profiles + conventions
// both on, so the checked/profiled op variants carry the load). The
// random sweep above covers the plain variants.
class SimEngineSuiteTest : public ::testing::TestWithParam<BenchmarkProgram> {
};

TEST_P(SimEngineSuiteTest, WholeSuiteAllConfigs) {
  const BenchmarkProgram &B = GetParam();
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
        PaperConfig::D, PaperConfig::E}) {
    DiagnosticEngine Diags;
    auto Compiled = compileProgram(B.Source, optionsFor(Config), Diags);
    ASSERT_NE(Compiled, nullptr)
        << B.Name << " under " << paperConfigName(Config) << ":\n"
        << Diags.str();
    SimOptions Opts;
    Opts.CollectBlockProfile = true;
    Opts.CheckConventions = true;
    expectEnginesAgree(Compiled->Program, Opts,
                       std::string(B.Name) + " under " +
                           paperConfigName(Config));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SimEngineSuiteTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &Info) {
      return std::string(Info.param.Name);
    });

// Walks the execution budget one instruction at a time across a program
// whose trace contains calls, returns, fused compare+branches and memory
// traffic. Every budget value in [0, N+2] must fail (or succeed) at the
// same instruction with the same error, the same partial counters and the
// same partial block profile under both engines -- this is the edge the
// fast path's hoisted budget test and the careful tail loop share.
TEST(SimEngineBudgetTest, ExhaustiveBudgetBoundarySweep) {
  const char *Src = R"(
var g = 3;
func mix(a, b) {
  var s = a * 2;
  if (s > b) { s = s - b; } else { s = s + b; }
  return s + g;
}
func main() {
  var acc = 0;
  for (var i = 0; i < 6; i = i + 1) {
    acc = acc + mix(i, acc);
    g = g + 1;
  }
  print(acc);
  return acc;
}
)";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Full;
  Full.MemWords = 1u << 16;
  Full.CollectBlockProfile = true;
  Full.CheckConventions = true;
  Full.Engine = SimEngine::Reference;
  RunStats Whole = runProgram(Compiled->Program, Full);
  ASSERT_TRUE(Whole.OK) << Whole.Error;
  ASSERT_GT(Whole.Instructions, 50u);
  ASSERT_LT(Whole.Instructions, 5000u) << "keep the sweep cheap";

  for (uint64_t Budget = 0; Budget <= Whole.Instructions + 2; ++Budget) {
    SimOptions Opts = Full;
    Opts.MaxSteps = Budget;
    expectEnginesAgree(Compiled->Program, Opts,
                       "budget " + std::to_string(Budget) + " of " +
                           std::to_string(Whole.Instructions));
  }
}

// Hand-built MIR hitting the runtime-error paths the decoder lowers to
// dedicated ops (CallBad/CallExt) or runtime checks (indirect calls,
// bounds, division), plus success paths through value edge cases. The
// error *messages* must match byte-for-byte, including the location
// suffix.
class SimEngineErrorTest : public ::testing::Test {
protected:
  /// One procedure, one block, the given instructions (a Ret is appended).
  static MProgram oneBlockProgram(std::vector<MInst> Insts) {
    MProgram Prog;
    MProc Main;
    Main.Name = "main";
    Main.Id = 0;
    MBlock B;
    B.Id = 0;
    Insts.push_back(MInst(MOpcode::Ret));
    B.Insts = std::move(Insts);
    Main.Blocks.push_back(std::move(B));
    Prog.Procs.push_back(std::move(Main));
    Prog.MainProcId = 0;
    return Prog;
  }

  static MInst loadImm(uint8_t Rd, int64_t Imm) {
    MInst I(MOpcode::LoadImm);
    I.Rd = Rd;
    I.Imm = Imm;
    return I;
  }
};

TEST_F(SimEngineErrorTest, OutOfBoundsLoadAndStore) {
  MInst Load(MOpcode::Load);
  Load.Rd = RegT1;
  Load.Rs = RegT0;
  Load.Imm = -7;
  expectEnginesAgree(oneBlockProgram({loadImm(RegT0, 2), Load}), {},
                     "negative load address");

  MInst Store(MOpcode::Store);
  Store.Rs = RegT0;
  Store.Rt = RegT0;
  Store.Imm = 1;
  SimOptions Small;
  Small.MemWords = 64;
  expectEnginesAgree(oneBlockProgram({loadImm(RegT0, 64), Store}), Small,
                     "store past the top of memory");
}

TEST_F(SimEngineErrorTest, DivisionAndRemainderEdges) {
  for (MOpcode Op : {MOpcode::Div, MOpcode::Rem}) {
    MInst I(Op);
    I.Rd = RegT2;
    I.Rs = RegT0;
    I.Rt = RegT1;
    expectEnginesAgree(oneBlockProgram({loadImm(RegT0, 5), I}), {},
                       "divide/remainder by zero (t1 stays 0)");
    // INT64_MIN / -1: the one overflowing quotient, result pinned.
    MInst Print(MOpcode::Print);
    Print.Rs = RegT2;
    expectEnginesAgree(oneBlockProgram({loadImm(RegT0, INT64_MIN),
                                        loadImm(RegT1, -1), I, Print}),
                       {}, "INT64_MIN / -1");
  }
}

TEST_F(SimEngineErrorTest, BadAndExternalCallTargets) {
  MInst BadCall(MOpcode::Call);
  BadCall.Callee = 7; // out of range: the decoder emits CallBad
  expectEnginesAgree(oneBlockProgram({BadCall}), {}, "call to invalid id");

  MProgram Ext = oneBlockProgram({});
  MProc External;
  External.Name = "printf";
  External.Id = 1;
  External.IsExternal = true;
  Ext.Procs.push_back(std::move(External));
  MInst ExtCall(MOpcode::Call);
  ExtCall.Callee = 1; // resolved at decode time: CallExt
  Ext.Procs[0].Blocks[0].Insts.insert(Ext.Procs[0].Blocks[0].Insts.begin(),
                                      ExtCall);
  expectEnginesAgree(Ext, {}, "call to external procedure");

  // The indirect forms stay runtime checks.
  MInst IndBad(MOpcode::CallInd);
  IndBad.Rs = RegT0;
  expectEnginesAgree(oneBlockProgram({loadImm(RegT0, -3), IndBad}), {},
                     "indirect call to invalid id");
  MInst IndExt(MOpcode::CallInd);
  IndExt.Rs = RegT0;
  MProgram Ext2 = oneBlockProgram({loadImm(RegT0, 1), IndExt});
  MProc External2;
  External2.Name = "malloc";
  External2.Id = 1;
  External2.IsExternal = true;
  Ext2.Procs.push_back(std::move(External2));
  expectEnginesAgree(Ext2, {}, "indirect call to external procedure");
}

TEST_F(SimEngineErrorTest, CallDepthExceeded) {
  // main calls itself forever; a tiny depth budget trips first.
  MInst Recurse(MOpcode::Call);
  Recurse.Callee = 0;
  SimOptions Opts;
  Opts.MaxCallDepth = 9;
  expectEnginesAgree(oneBlockProgram({Recurse}), Opts, "call depth");
}

TEST_F(SimEngineErrorTest, ShiftRangeAndWrapArithmetic) {
  // Shl/Shr out of [0,62] produce 0; Add wraps; results observed via
  // Print so a value divergence shows up in Output.
  std::vector<MInst> Insts;
  Insts.push_back(loadImm(RegT0, INT64_MAX));
  Insts.push_back(loadImm(RegT1, 63));
  for (MOpcode Op : {MOpcode::Shl, MOpcode::Shr, MOpcode::Add}) {
    MInst I(Op);
    I.Rd = RegT2;
    I.Rs = RegT0;
    I.Rt = Op == MOpcode::Add ? RegT0 : RegT1;
    Insts.push_back(I);
    MInst Print(MOpcode::Print);
    Print.Rs = RegT2;
    Insts.push_back(Print);
  }
  expectEnginesAgree(oneBlockProgram(std::move(Insts)), {},
                     "shift range and wrap-around");
}

// The decoded engine's observability counters: present (and plausible)
// under the Decoded engine, absent from Reference-engine counter reports
// so pre-existing --stats-json goldens cannot shift.
TEST(SimEngineCountersTest, DecodeCountersOnlyUnderDecodedEngine) {
  ProgramGenerator Gen(4242);
  DiagnosticEngine Diags;
  auto Compiled =
      compileProgram(Gen.generate(), optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Opts;
  Opts.Engine = SimEngine::Reference;
  RunStats Ref = runProgram(Compiled->Program, Opts);
  ASSERT_TRUE(Ref.OK) << Ref.Error;
  EXPECT_EQ(Ref.DecodedOps, 0u);
  EXPECT_EQ(Ref.counters().json().find("sim.decode"), std::string::npos);
  EXPECT_EQ(Ref.counters().json().find("sim.dispatch"), std::string::npos);

  Opts.Engine = SimEngine::Decoded;
  RunStats Dec = runProgram(Compiled->Program, Opts);
  ASSERT_TRUE(Dec.OK) << Dec.Error;
  EXPECT_GT(Dec.DecodedProcs, 0u);
  EXPECT_GT(Dec.DecodedOps, 0u);
  // Fusion only ever shrinks the stream, two source insts per superop.
  EXPECT_EQ(Dec.DecodedSourceInsts,
            Dec.DecodedOps + Dec.FusedCmpBranches + Dec.FusedAddImmLoads);
  EXPECT_NE(Dec.counters().json().find("sim.decode.ops"), std::string::npos);
}

// BatchRunner determinism: the same job list must produce the same
// results in the same order at any thread count (0 = inline baseline).
// Tagged "parallel"+"sim" so the TSan preset races the pool for real.
TEST(BatchRunnerTest, DeterministicOrderingAcrossThreadCounts) {
  std::vector<std::string> Sources;
  for (uint32_t Seed : {9301u, 9302u, 9303u}) {
    ProgramGenerator Gen(Seed);
    Sources.push_back(Gen.generate());
  }
  std::vector<std::unique_ptr<CompileResult>> Compiled;
  for (const std::string &Src : Sources) {
    DiagnosticEngine Diags;
    auto Result = compileProgram(Src, optionsFor(PaperConfig::C), Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    Compiled.push_back(std::move(Result));
  }
  std::vector<const MProgram *> Progs;
  for (int Copy = 0; Copy < 4; ++Copy) // 12 jobs over <= 4 workers
    for (const auto &Result : Compiled)
      Progs.push_back(&Result->Program);

  SimOptions Opts;
  Opts.CollectBlockProfile = true;
  sim::BatchRunner Inline(0);
  std::vector<RunStats> Baseline = Inline.runPrograms(Progs, Opts);
  ASSERT_EQ(Baseline.size(), Progs.size());
  for (const RunStats &S : Baseline)
    ASSERT_TRUE(S.OK) << S.Error;

  for (unsigned Threads : {1u, 4u}) {
    sim::BatchRunner Runner(Threads);
    std::vector<RunStats> Results = Runner.runPrograms(Progs, Opts);
    ASSERT_EQ(Results.size(), Baseline.size()) << Threads << " threads";
    for (size_t I = 0; I < Results.size(); ++I)
      EXPECT_TRUE(Results[I].sameExecution(Baseline[I]))
          << "slot " << I << " at " << Threads << " threads";
  }
}

// A throwing job must not deadlock the pool and must surface from map().
TEST(BatchRunnerTest, FirstJobExceptionPropagates) {
  sim::BatchRunner Runner(2);
  std::vector<std::function<int()>> Jobs;
  for (int I = 0; I < 6; ++I)
    Jobs.push_back([I]() -> int {
      if (I == 3)
        throw std::runtime_error("job 3 failed");
      return I;
    });
  EXPECT_THROW({ Runner.map(Jobs); }, std::runtime_error);
}

} // namespace
