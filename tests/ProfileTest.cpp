//===- tests/ProfileTest.cpp - Profile collection and feedback ------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

TEST(ProfileTest, CountsMatchControlFlow) {
  const char *Src = R"(
    func f(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    }
    func main() { print(f(10)); return 0; }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();
  SimOptions Opts;
  Opts.CollectBlockProfile = true;
  RunStats Stats = runProgram(Compiled->Program, Opts);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  Procedure *F = Compiled->IR->findProcedure("f");
  const auto &Counts = Stats.Profile.BlockCounts[F->id()];
  ASSERT_EQ(Counts.size(), F->numBlocks());
  EXPECT_EQ(Counts[0], 1u) << "entry executes once per activation";
  // Exactly one block executed 10 times (the loop body) and one 11 times
  // (the loop condition).
  unsigned Ten = 0;
  unsigned Eleven = 0;
  for (uint64_t C : Counts) {
    Ten += C == 10;
    Eleven += C == 11;
  }
  EXPECT_GE(Ten, 1u);
  EXPECT_EQ(Eleven, 1u);
}

TEST(ProfileTest, ProfileOffByDefault) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram("func main() { return 0; }",
                                 optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Compiled, nullptr);
  RunStats Stats = runProgram(Compiled->Program);
  EXPECT_TRUE(Stats.Profile.empty());
}

TEST(ProfileTest, ApplyProfileNormalizesPerActivation) {
  const char *Src = R"(
    func g(n) {
      var s = 0;
      while (n > 0) { s = s + n; n = n - 1; }
      return s;
    }
    func main() {
      var t = 0;
      for (var i = 0; i < 5; i = i + 1) { t = t + g(100); }
      print(t);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Src, optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Compiled, nullptr);
  SimOptions SOpts;
  SOpts.CollectBlockProfile = true;
  RunStats Stats = runProgram(Compiled->Program, SOpts);
  ASSERT_TRUE(Stats.OK);
  Procedure *G = Compiled->IR->findProcedure("g");
  applyProfile(*G, Stats.Profile);
  EXPECT_DOUBLE_EQ(G->entry()->Freq, 1.0)
      << "entry frequency is per-activation";
  double MaxFreq = 0;
  for (const auto &BB : *G)
    MaxFreq = std::max(MaxFreq, BB->Freq);
  EXPECT_NEAR(MaxFreq, 100.0, 1.5) << "loop body ran ~100x per call";
}

TEST(ProfileTest, FeedbackPreservesBehaviour) {
  const char *Src = R"(
    func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    func work(x) {
      if (x % 7 == 0) {
        var a = x * 3; var b = x * 5;
        var r = fib(6);
        return a + b + r;
      }
      return x;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 200; i = i + 1) { s = s + work(i); }
      print(s);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  CompileOptions Opts = optionsFor(PaperConfig::C);
  auto Static = compileProgram(Src, Opts, Diags);
  auto Guided = compileWithProfile(Src, Opts, Diags);
  ASSERT_NE(Static, nullptr) << Diags.str();
  ASSERT_NE(Guided, nullptr) << Diags.str();
  RunStats StaticStats = runProgram(Static->Program);
  RunStats GuidedStats = runProgram(Guided->Program);
  ASSERT_TRUE(StaticStats.OK) << StaticStats.Error;
  ASSERT_TRUE(GuidedStats.OK) << GuidedStats.Error;
  EXPECT_EQ(StaticStats.Output, GuidedStats.Output);
}

TEST(ProfileTest, FeedbackHelpsWhenStaticEstimateMisleads) {
  // The static estimate weights loop nesting only; it cannot see that the
  // "cold-looking" arm is the one that actually runs. With the profile the
  // allocator stops shrink-wrapping saves into the hot arm.
  const char *Src = R"(
    func helper(x) { return x + 1; }
    func work(x, flag) {
      if (flag) {
        // Statically plausible arm, dynamically always taken.
        var a = x * 2;
        var b = helper(x);
        var c = helper(a);
        return a + b + c;
      }
      return x;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 3000; i = i + 1) { s = s + work(i, 1); }
      print(s);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  CompileOptions Opts = optionsFor(PaperConfig::C);
  auto Static = compileProgram(Src, Opts, Diags);
  auto Guided = compileWithProfile(Src, Opts, Diags);
  ASSERT_NE(Static, nullptr) << Diags.str();
  ASSERT_NE(Guided, nullptr) << Diags.str();
  RunStats StaticStats = runProgram(Static->Program);
  RunStats GuidedStats = runProgram(Guided->Program);
  ASSERT_TRUE(StaticStats.OK && GuidedStats.OK);
  EXPECT_EQ(StaticStats.Output, GuidedStats.Output);
  EXPECT_LE(GuidedStats.scalarMemOps(), StaticStats.scalarMemOps());
  EXPECT_LE(GuidedStats.Cycles, StaticStats.Cycles);
}

} // namespace
