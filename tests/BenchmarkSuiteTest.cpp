//===- tests/BenchmarkSuiteTest.cpp - Differential suite testing ----------===//
//
// Every benchmark program must produce byte-identical observable output
// under every compiler configuration: the configurations may only change
// *how fast* the code runs, never *what* it computes. This differential
// check over realistic programs is the strongest whole-compiler test in
// the repository.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

class BenchmarkSuiteTest
    : public ::testing::TestWithParam<BenchmarkProgram> {};

TEST_P(BenchmarkSuiteTest, IdenticalOutputAcrossAllConfigs) {
  const BenchmarkProgram &B = GetParam();
  RunStats Reference = compileAndRun(B.Source, optionsFor(PaperConfig::Base));
  ASSERT_TRUE(Reference.OK) << B.Name << ": " << Reference.Error;
  ASSERT_FALSE(Reference.Output.empty()) << B.Name << " prints nothing";
  for (PaperConfig Config : {PaperConfig::A, PaperConfig::B, PaperConfig::C,
                             PaperConfig::D, PaperConfig::E}) {
    RunStats Stats = compileAndRun(B.Source, optionsFor(Config));
    ASSERT_TRUE(Stats.OK)
        << B.Name << " under " << paperConfigName(Config) << ": "
        << Stats.Error;
    EXPECT_EQ(Stats.Output, Reference.Output)
        << B.Name << " diverges under " << paperConfigName(Config);
    EXPECT_EQ(Stats.ExitValue, Reference.ExitValue);
  }
}

TEST_P(BenchmarkSuiteTest, IdenticalOutputAcrossAblations) {
  const BenchmarkProgram &B = GetParam();
  RunStats Reference = compileAndRun(B.Source, optionsFor(PaperConfig::C));
  ASSERT_TRUE(Reference.OK) << B.Name << ": " << Reference.Error;
  for (int Bits : {0, 1, 2, 4, 6}) {
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.CombinedStrategy = Bits & 1;
    Opts.RegisterParams = Bits & 2;
    Opts.LoopExtension = Bits & 4;
    RunStats Stats = compileAndRun(B.Source, Opts);
    ASSERT_TRUE(Stats.OK) << B.Name << " ablation " << Bits << ": "
                          << Stats.Error;
    EXPECT_EQ(Stats.Output, Reference.Output)
        << B.Name << " diverges under ablation bits " << Bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchmarkSuiteTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &I) {
      return std::string(I.param.Name);
    });

TEST(BenchmarkRegistryTest, ThirteenProgramsInPaperOrder) {
  const auto &Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 13u);
  EXPECT_STREQ(Suite.front().Name, "nim");
  EXPECT_STREQ(Suite.back().Name, "uopt");
  // Table 1 orders benchmarks by increasing source line count.
  for (unsigned I = 0; I + 1 < Suite.size(); ++I)
    EXPECT_LT(Suite[I].sourceLines(), Suite[I + 1].sourceLines())
        << Suite[I].Name << " vs " << Suite[I + 1].Name;
}

TEST(BenchmarkRegistryTest, LookupByName) {
  EXPECT_NE(findBenchmark("tex"), nullptr);
  EXPECT_EQ(findBenchmark("nope"), nullptr);
  EXPECT_STREQ(findBenchmark("ccom")->Language, "C");
}

TEST(BenchmarkRegistryTest, SuiteIsCallIntensive) {
  // The paper's rationale: opportunities arise only at calls, so the
  // suite must be call-intensive. Check calls per kilocycle is nontrivial
  // for every program.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    RunStats Stats = compileAndRun(B.Source, optionsFor(PaperConfig::Base));
    ASSERT_TRUE(Stats.OK) << B.Name;
    EXPECT_GT(Stats.Calls, 100u) << B.Name;
    EXPECT_LT(Stats.cyclesPerCall(), 200.0) << B.Name;
  }
}

} // namespace
