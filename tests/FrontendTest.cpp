//===- tests/FrontendTest.cpp - Lexer/Parser/Sema/Lower tests -------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Printer.h"
#include "ir/Procedure.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

std::vector<Token> lexOK(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lex();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Toks;
}

TEST(LexerTest, TokenKindsAndValues) {
  auto Toks = lexOK("func f(a) { return a + 42; } // comment\n");
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::KwFunc, TokKind::Ident,    TokKind::LParen, TokKind::Ident,
      TokKind::RParen, TokKind::LBrace,   TokKind::KwReturn, TokKind::Ident,
      TokKind::Plus,   TokKind::IntLit,   TokKind::Semi,   TokKind::RBrace,
      TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_EQ(Toks[1].Text, "f");
  EXPECT_EQ(Toks[9].IntValue, 42);
}

TEST(LexerTest, MultiCharOperators) {
  auto Toks = lexOK("== != <= >= && || < > = ! &");
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::EqEq, TokKind::BangEq,   TokKind::Le,     TokKind::Ge,
      TokKind::AmpAmp, TokKind::PipePipe, TokKind::Lt,   TokKind::Gt,
      TokKind::Assign, TokKind::Bang,   TokKind::Amp,    TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Toks = lexOK("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[0].Loc.Col, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[1].Loc.Col, 3);
}

TEST(LexerTest, ReportsBadCharacter) {
  DiagnosticEngine Diags;
  Lexer L("a $ b", Diags);
  L.lex();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unexpected character"), std::string::npos);
}

Program parseOK(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lex(), Diags);
  Program Prog = P.parseProgram();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

TEST(ParserTest, GlobalAndFunctionShapes) {
  Program Prog = parseOK(R"(
    var g;
    var init = -3;
    var table[64];
    extern func ext(a, b);
    export func api(x) { return x; }
    func main() { return 0; }
  )");
  ASSERT_EQ(Prog.Globals.size(), 3u);
  EXPECT_EQ(Prog.Globals[0].ArraySize, -1);
  EXPECT_EQ(Prog.Globals[1].ScalarInit, -3);
  EXPECT_EQ(Prog.Globals[2].ArraySize, 64);
  ASSERT_EQ(Prog.Funcs.size(), 3u);
  EXPECT_TRUE(Prog.Funcs[0].IsExtern);
  EXPECT_EQ(Prog.Funcs[0].Params.size(), 2u);
  EXPECT_EQ(Prog.Funcs[0].Body, nullptr);
  EXPECT_TRUE(Prog.Funcs[1].IsExport);
  ASSERT_NE(Prog.Funcs[1].Body, nullptr);
}

TEST(ParserTest, PrecedenceShape) {
  Program Prog = parseOK("func f(a, b) { return a + b * 2 == 7 || !a; }");
  auto &Ret = static_cast<ReturnStmt &>(
      *static_cast<BlockStmt &>(*Prog.Funcs[0].Body).Stmts[0]);
  // Top node must be ||.
  ASSERT_EQ(Ret.Value->K, Expr::Kind::Binary);
  auto &Or = static_cast<BinaryExpr &>(*Ret.Value);
  EXPECT_EQ(Or.Op, TokKind::PipePipe);
  // LHS of || is ==; its LHS is a + (b*2).
  auto &Eq = static_cast<BinaryExpr &>(*Or.LHS);
  EXPECT_EQ(Eq.Op, TokKind::EqEq);
  auto &Add = static_cast<BinaryExpr &>(*Eq.LHS);
  EXPECT_EQ(Add.Op, TokKind::Plus);
  auto &Mul = static_cast<BinaryExpr &>(*Add.RHS);
  EXPECT_EQ(Mul.Op, TokKind::Star);
}

TEST(ParserTest, PostfixChains) {
  Program Prog = parseOK("func f(t, i) { return t[i](3)[4]; }");
  auto &Ret = static_cast<ReturnStmt &>(
      *static_cast<BlockStmt &>(*Prog.Funcs[0].Body).Stmts[0]);
  ASSERT_EQ(Ret.Value->K, Expr::Kind::Index);
  auto &Outer = static_cast<IndexExpr &>(*Ret.Value);
  ASSERT_EQ(Outer.Base->K, Expr::Kind::Call);
  auto &Call = static_cast<CallExpr &>(*Outer.Base);
  EXPECT_EQ(Call.Callee->K, Expr::Kind::Index);
}

TEST(ParserTest, ForLoopPieces) {
  Program Prog = parseOK(
      "func f() { for (var i = 0; i < 10; i = i + 1) { print(i); } }");
  auto &For = static_cast<ForStmt &>(
      *static_cast<BlockStmt &>(*Prog.Funcs[0].Body).Stmts[0]);
  ASSERT_NE(For.Init, nullptr);
  EXPECT_EQ(For.Init->K, Stmt::Kind::VarDecl);
  ASSERT_NE(For.Cond, nullptr);
  ASSERT_NE(For.Step, nullptr);
  EXPECT_EQ(For.Step->K, Stmt::Kind::Assign);
}

TEST(ParserTest, ReportsSyntaxError) {
  DiagnosticEngine Diags;
  Lexer L("func f( { }", Diags);
  Parser P(L.lex(), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
}

std::string semaErrors(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lex(), Diags);
  Program Prog = P.parseProgram();
  EXPECT_FALSE(Diags.hasErrors()) << "parse should succeed: " << Diags.str();
  analyze(Prog, Diags);
  return Diags.str();
}

TEST(SemaTest, UndefinedName) {
  EXPECT_NE(semaErrors("func f() { return missing; }").find("undeclared"),
            std::string::npos);
}

TEST(SemaTest, Redefinition) {
  EXPECT_NE(semaErrors("var a; var a;").find("redefinition"),
            std::string::npos);
  EXPECT_NE(semaErrors("func f() { var x; var x; }").find("redefinition"),
            std::string::npos);
}

TEST(SemaTest, ShadowingInNestedScopeIsAllowed) {
  EXPECT_EQ(semaErrors("var x; func f(x) { { var y = x; } return x; }"), "");
}

TEST(SemaTest, ArityMismatch) {
  EXPECT_NE(semaErrors("func g(a) { return a; } func f() { return g(); }")
                .find("expected 1"),
            std::string::npos);
}

TEST(SemaTest, BreakOutsideLoop) {
  EXPECT_NE(semaErrors("func f() { break; }").find("outside"),
            std::string::npos);
}

TEST(SemaTest, FunctionIsNotAValue) {
  EXPECT_NE(semaErrors("func g() { return 0; } func f() { return g; }")
                .find("not a value"),
            std::string::npos);
}

TEST(SemaTest, AddrOfRequiresFunction) {
  EXPECT_NE(semaErrors("var v; func f() { return &v; }")
                .find("requires a function"),
            std::string::npos);
}

TEST(SemaTest, AssignToArrayRejected) {
  EXPECT_NE(semaErrors("var a[4]; func f() { a = 3; }")
                .find("cannot assign"),
            std::string::npos);
}

std::unique_ptr<Module> compileOK(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

TEST(LowerTest, SimpleFunctionLowers) {
  auto M = compileOK("func add(a, b) { return a + b; }");
  Procedure *P = M->findProcedure("add");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->ParamVRegs.size(), 2u);
  std::string Text = toString(*P);
  EXPECT_NE(Text.find("add %1, %2"), std::string::npos);
}

TEST(LowerTest, GlobalScalarAndArrayAccess) {
  auto M = compileOK(R"(
    var g = 5;
    var t[8];
    func f(i) {
      g = g + 1;
      t[i] = g;
      return t[2];
    }
  )");
  ASSERT_EQ(M->Globals.size(), 2u);
  EXPECT_EQ(M->Globals[0].Init, (std::vector<int64_t>{5}));
  std::string Text = toString(*M->findProcedure("f"));
  EXPECT_NE(Text.find("loadglobal @0"), std::string::npos);
  EXPECT_NE(Text.find("storeglobal @0"), std::string::npos);
  EXPECT_NE(Text.find("addrglobal @1"), std::string::npos);
  EXPECT_NE(Text.find("store ["), std::string::npos);
}

TEST(LowerTest, LocalArrayCreatesFrameObject) {
  auto M = compileOK("func f() { var buf[16]; buf[0] = 1; return buf[0]; }");
  Procedure *P = M->findProcedure("f");
  ASSERT_EQ(P->FrameObjects.size(), 1u);
  EXPECT_EQ(P->FrameObjects[0].SizeWords, 16);
  EXPECT_NE(toString(*P).find("addrlocal $0"), std::string::npos);
}

TEST(LowerTest, IfElseProducesDiamond) {
  auto M = compileOK("func f(a) { if (a) { return 1; } else { return 2; } }");
  Procedure *P = M->findProcedure("f");
  // entry + then + else + merge
  EXPECT_EQ(P->numBlocks(), 4u);
  EXPECT_EQ(P->entry()->terminator().Op, Opcode::CondBr);
}

TEST(LowerTest, WhileLoopHasBackEdge) {
  auto M = compileOK("func f(n) { while (n > 0) { n = n - 1; } return n; }");
  Procedure *P = M->findProcedure("f");
  P->recomputeCFG();
  // Find a block whose successor has a smaller id (back edge to cond block).
  bool FoundBackEdge = false;
  for (const auto &BB : *P)
    for (int S : BB->successors())
      FoundBackEdge |= S <= BB->id() && S != 0;
  EXPECT_TRUE(FoundBackEdge);
}

TEST(LowerTest, ShortCircuitBranches) {
  auto M = compileOK("func f(a, b) { if (a && b) { return 1; } return 0; }");
  Procedure *P = M->findProcedure("f");
  // Entry tests 'a' and must branch to a block testing 'b' rather than
  // computing a logical AND value.
  const Instruction &T = P->entry()->terminator();
  ASSERT_EQ(T.Op, Opcode::CondBr);
  for (const auto &BB : *P)
    for (const Instruction &I : BB->Insts)
      EXPECT_NE(I.Op, Opcode::And);
}

TEST(LowerTest, ShortCircuitAsValueMaterializes) {
  auto M = compileOK("func f(a, b) { var c = a || b; return c; }");
  Procedure *P = M->findProcedure("f");
  int LoadImmCount = 0;
  for (const auto &BB : *P)
    for (const Instruction &I : BB->Insts)
      if (I.Op == Opcode::LoadImm)
        ++LoadImmCount;
  EXPECT_GE(LoadImmCount, 2) << "expected 0/1 materialization";
}

TEST(LowerTest, IndirectCallThroughVariable) {
  auto M = compileOK(R"(
    func inc(x) { return x + 1; }
    func f() {
      var p = &inc;
      return p(41);
    }
  )");
  EXPECT_TRUE(M->findProcedure("inc")->AddressTaken);
  std::string Text = toString(*M->findProcedure("f"));
  EXPECT_NE(Text.find("funcaddr proc0"), std::string::npos);
  EXPECT_NE(Text.find("calli *"), std::string::npos);
}

TEST(LowerTest, BreakAndContinueTargets) {
  auto M = compileOK(R"(
    func f(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        s = s + i;
      }
      return s;
    }
  )");
  // Must verify (done inside compileToIR) and contain no unterminated block.
  for (const auto &BB : *M->findProcedure("f"))
    EXPECT_TRUE(BB->hasTerminator());
}

TEST(LowerTest, ExternFunctionHasNoBody) {
  auto M = compileOK("extern func lib(a); func f() { return lib(1); }");
  EXPECT_TRUE(M->findProcedure("lib")->IsExternal);
  EXPECT_EQ(M->findProcedure("lib")->numBlocks(), 0u);
}

TEST(LowerTest, MainFlagSet) {
  auto M = compileOK("func main() { return 0; }");
  EXPECT_TRUE(M->findProcedure("main")->IsMain);
}

TEST(LowerTest, ConstantIndexFoldsIntoAddImm) {
  auto M = compileOK("var t[4]; func f() { return t[3]; }");
  std::string Text = toString(*M->findProcedure("f"));
  EXPECT_NE(Text.find("addimm"), std::string::npos);
}

} // namespace
