//===- tests/ConventionGen.h - Random calling-convention specs ------------===//
//
// Seeded generator of valid ConventionSpecs for the property tests and the
// convention fuzzer: arbitrary caller/callee splits of the pool, occasional
// reservations, and a random (count and order) caller-saved parameter
// assignment. Everything it returns satisfies ConventionSpec::validate.
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_TESTS_CONVENTIONGEN_H
#define IPRA_TESTS_CONVENTIONGEN_H

#include "target/Machine.h"

#include <random>
#include <vector>

namespace ipra {

inline ConventionSpec randomConventionSpec(std::mt19937 &Rng) {
  std::uniform_int_distribution<unsigned> Pct(0, 99);
  ConventionSpec Spec;
  // Per-spec bias so the population covers all-caller-saved through
  // all-callee-saved rather than clustering around half/half.
  unsigned CalleeBias = Pct(Rng) + 1;
  for (unsigned Reg = AllocPoolFirst; Reg <= AllocPoolLast; ++Reg)
    if (Pct(Rng) < CalleeBias)
      Spec.CalleeSaved.set(Reg);
  // A quarter of the specs reserve a few registers (never the whole pool:
  // at most one in three per draw).
  if (Pct(Rng) < 25)
    for (unsigned Reg = AllocPoolFirst; Reg <= AllocPoolLast; ++Reg)
      if (Pct(Rng) < 34)
        Spec.Reserved.set(Reg);
  // Parameters: a random count of caller-saved registers in random order.
  std::vector<unsigned> Caller;
  for (unsigned Reg = AllocPoolFirst; Reg <= AllocPoolLast; ++Reg)
    if (!Spec.CalleeSaved.test(Reg))
      Caller.push_back(Reg);
  for (size_t I = Caller.size(); I > 1; --I)
    std::swap(Caller[I - 1],
              Caller[std::uniform_int_distribution<size_t>(0, I - 1)(Rng)]);
  size_t MaxParams = Caller.size() < 6 ? Caller.size() : 6;
  size_t NumParams =
      std::uniform_int_distribution<size_t>(0, MaxParams)(Rng);
  Spec.ParamRegs.assign(Caller.begin(), Caller.begin() + NumParams);
  return Spec;
}

} // namespace ipra

#endif // IPRA_TESTS_CONVENTIONGEN_H
