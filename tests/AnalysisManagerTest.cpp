//===- tests/AnalysisManagerTest.cpp - Analysis cache behaviour -----------===//
//
// The AnalysisManager is only an optimization if it is invisible: cached
// analyses must be the same objects a fresh compute would produce, cache
// hits and misses must move the counters exactly as the header documents,
// and a pass that mutates the IR without calling invalidate() must be
// caught, not silently served stale dataflow. The fused
// computeRangesAndInterference builder is additionally pinned against the
// slow two-pass oracle over the entire benchmark suite -- every field,
// bit-for-bit, including the floating-point sums whose summation order
// the fused walk must preserve.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "analysis/Loops.h"
#include "frontend/Frontend.h"
#include "opt/Passes.h"
#include "programs/Programs.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace ipra;

namespace {

std::unique_ptr<Module> compileOK(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

/// Prepares a procedure for analysis: CFG, loops, frequencies.
void prepare(Procedure &P) {
  P.recomputeCFG();
  estimateFrequencies(P, LoopInfo::compute(P));
}

const char *Fixture = R"(
  func fib(n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
  }
  func main() { print(fib(10)); return 0; }
)";

Procedure *firstBody(Module &M) {
  for (auto &P : M)
    if (!P->IsExternal)
      return P.get();
  return nullptr;
}

TEST(AnalysisManagerTest, HitAndMissCountersMoveAsDocumented) {
  auto M = compileOK(Fixture);
  ASSERT_NE(M, nullptr);
  Procedure *P = firstBody(*M);
  ASSERT_NE(P, nullptr);
  prepare(*P);

  AnalysisManager AM(*P);
  const AnalysisManager::CacheStats &S = AM.cacheStats();
  EXPECT_EQ(S.LivenessComputes, 0u);
  EXPECT_EQ(S.LivenessCacheHits, 0u);
  EXPECT_EQ(S.RangesComputes, 0u);
  EXPECT_EQ(S.RangesCacheHits, 0u);
  EXPECT_EQ(S.Invalidations, 0u);

  // First request computes, second hits.
  const Liveness &LV1 = AM.liveness();
  EXPECT_EQ(S.LivenessComputes, 1u);
  EXPECT_EQ(S.LivenessCacheHits, 0u);
  EXPECT_GT(S.LivenessBlocks, 0u);
  EXPECT_GT(S.LivenessPops, 0u);
  const Liveness &LV2 = AM.liveness();
  EXPECT_EQ(S.LivenessComputes, 1u);
  EXPECT_EQ(S.LivenessCacheHits, 1u);
  EXPECT_EQ(&LV1, &LV2) << "cache hit must return the same object";

  // Ranges and interference materialize together: the first accessor
  // computes (pulling cached liveness -- one more hit), the second is a
  // pure cache hit, whichever order they are requested in.
  const LiveRangeInfo &LRI1 = AM.liveRanges();
  EXPECT_EQ(S.RangesComputes, 1u);
  EXPECT_EQ(S.RangesCacheHits, 0u);
  EXPECT_EQ(S.LivenessCacheHits, 2u);
  const InterferenceGraph &IG1 = AM.interference();
  EXPECT_EQ(S.RangesComputes, 1u);
  EXPECT_EQ(S.RangesCacheHits, 1u);
  EXPECT_EQ(&AM.liveRanges(), &LRI1);
  EXPECT_EQ(&AM.interference(), &IG1);
  EXPECT_EQ(S.RangesCacheHits, 3u);

  // Invalidation drops everything; the next requests recompute.
  AM.invalidate();
  EXPECT_EQ(S.Invalidations, 1u);
  AM.liveness();
  AM.interference();
  EXPECT_EQ(S.LivenessComputes, 2u);
  EXPECT_EQ(S.RangesComputes, 2u);

  // Invalidating an already-empty cache still counts (documented so
  // passes' invalidation discipline is observable).
  AM.invalidate();
  AM.invalidate();
  EXPECT_EQ(S.Invalidations, 3u);

  // The counters publish under the documented "analysis.*" names.
  StatCounters C;
  AM.addCountersTo(C);
  EXPECT_EQ(C.get("analysis.liveness_computes"), S.LivenessComputes);
  EXPECT_EQ(C.get("analysis.liveness_cache_hits"), S.LivenessCacheHits);
  EXPECT_EQ(C.get("analysis.ranges_interference_computes"),
            S.RangesComputes);
  EXPECT_EQ(C.get("analysis.ranges_interference_cache_hits"),
            S.RangesCacheHits);
  EXPECT_EQ(C.get("analysis.invalidations"), S.Invalidations);
  EXPECT_EQ(C.get("analysis.liveness_pops"), S.LivenessPops);
  EXPECT_EQ(C.get("analysis.liveness_iterations"), S.LivenessIterations);
  EXPECT_EQ(C.get("analysis.liveness_blocks"), S.LivenessBlocks);
}

TEST(AnalysisManagerTest, CachedResultsMatchFreshComputes) {
  // The cache must be invisible: a cached liveness/ranges/interference
  // answer equals what a from-scratch compute produces right now.
  auto M = compileOK(Fixture);
  ASSERT_NE(M, nullptr);
  optimize(*M);
  for (auto &P : *M) {
    if (P->IsExternal)
      continue;
    prepare(*P);
    AnalysisManager AM(*P);
    const Liveness &Cached = AM.liveness();
    AM.liveness(); // warm hit; must not perturb anything
    Liveness Fresh = Liveness::compute(*P);
    for (const auto &BB : *P) {
      EXPECT_TRUE(Cached.liveIn(BB->id()) == Fresh.liveIn(BB->id()));
      EXPECT_TRUE(Cached.liveOut(BB->id()) == Fresh.liveOut(BB->id()));
    }
    const InterferenceGraph &IG = AM.interference();
    InterferenceGraph FreshIG = InterferenceGraph::compute(*P, Fresh);
    for (VReg R = 0; R < P->NumVRegs; ++R)
      EXPECT_TRUE(IG.neighbors(R) == FreshIG.neighbors(R));
  }
}

TEST(AnalysisManagerDeathTest, ForgottenInvalidateIsCaught) {
  // A pass that changes the IR shape and then asks for liveness without
  // invalidate() must die on the stale-cache assert, not get stale
  // dataflow. NDEBUG is stripped in every build type, so this guard is
  // active in release builds too.
  auto M = compileOK(Fixture);
  ASSERT_NE(M, nullptr);
  Procedure *P = firstBody(*M);
  ASSERT_NE(P, nullptr);
  prepare(*P);
  AnalysisManager AM(*P);
  AM.liveness();
  P->makeVReg(); // IR shape change, deliberately without AM.invalidate()
  EXPECT_DEATH(AM.liveness(), "stale analysis cache");
}

TEST(AnalysisManagerDeathTest, InPlaceOperandRewriteIsCaught) {
  // The staleness hazard the content fingerprint closed: a mutation that
  // preserves the IR's *shape* -- same block count, same instruction
  // counts, same vreg count -- but rewrites an operand in place used to
  // slip past the old shape-only hash and be served stale dataflow.
  // Every field of every instruction is now fingerprinted, so skipping
  // invalidate() dies on the release-mode assert for this class of
  // mutation too.
  auto M = compileOK(Fixture);
  ASSERT_NE(M, nullptr);
  Procedure *P = firstBody(*M);
  ASSERT_NE(P, nullptr);
  prepare(*P);
  AnalysisManager AM(*P);
  AM.liveness();
  ASSERT_FALSE(P->entry()->Insts.empty());
  P->entry()->Insts.front().Imm += 1; // in-place rewrite, no invalidate()
  EXPECT_DEATH(AM.liveness(), "stale analysis cache");
}

TEST(AnalysisManagerTest, FingerprintIsContentSensitive) {
  // fingerprintIR keys the incremental compile service's reuse decisions:
  // it must be stable across deep copies and move on any content change,
  // not just shape changes.
  auto M = compileOK(Fixture);
  ASSERT_NE(M, nullptr);
  Procedure *P = firstBody(*M);
  ASSERT_NE(P, nullptr);
  uint64_t Before = AnalysisManager::fingerprintIR(*P);
  EXPECT_EQ(AnalysisManager::fingerprintIR(*P), Before)
      << "fingerprinting is a pure function";

  // A deep body copy fingerprints identically...
  auto M2 = compileOK(Fixture);
  ASSERT_NE(M2, nullptr);
  Procedure *Copy = firstBody(*M2);
  Copy->adoptBodyOf(*P);
  EXPECT_EQ(AnalysisManager::fingerprintIR(*Copy), Before);

  // ...an in-place operand tweak does not...
  P->entry()->Insts.front().Imm += 1;
  uint64_t Tweaked = AnalysisManager::fingerprintIR(*P);
  EXPECT_NE(Tweaked, Before);
  P->entry()->Insts.front().Imm -= 1;
  EXPECT_EQ(AnalysisManager::fingerprintIR(*P), Before)
      << "undoing the tweak restores the fingerprint";

  // ...nor does appending an instruction, changing a linkage flag, or
  // minting a vreg.
  Instruction Dead(Opcode::LoadImm);
  Dead.Dst = P->makeVReg();
  Dead.Imm = 42;
  P->entry()->Insts.insert(P->entry()->Insts.begin(), Dead);
  uint64_t Grown = AnalysisManager::fingerprintIR(*P);
  EXPECT_NE(Grown, Before);
  bool SavedExported = P->Exported;
  P->Exported = !P->Exported;
  EXPECT_NE(AnalysisManager::fingerprintIR(*P), Grown);
  P->Exported = SavedExported;
  P->makeVReg();
  EXPECT_NE(AnalysisManager::fingerprintIR(*P), Grown);

  // Block frequencies are deliberately excluded: they are derived data,
  // recomputed by the pipeline, not part of the procedure's identity.
  auto M3 = compileOK(Fixture);
  ASSERT_NE(M3, nullptr);
  Procedure *Q = firstBody(*M3);
  uint64_t QBefore = AnalysisManager::fingerprintIR(*Q);
  Q->entry()->Freq *= 8.0;
  EXPECT_EQ(AnalysisManager::fingerprintIR(*Q), QBefore);
}

TEST(AnalysisManagerTest, FusedBuilderMatchesTwoPassOracleOnSuite) {
  // computeRangesAndInterference promises bit-identical results to the
  // two-pass LiveRangeInfo::compute + InterferenceGraph::compute, on
  // whose output every allocator decision rests. Compare every field of
  // every live range -- including exact doubles, whose block-order
  // summation the fused walk preserves -- over the whole benchmark
  // suite, compiled exactly as the pipeline would (optimized,
  // frequencies estimated).
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    auto M = compileOK(B.Source);
    ASSERT_NE(M, nullptr) << B.Name;
    optimize(*M);
    for (auto &P : *M) {
      if (P->IsExternal)
        continue;
      prepare(*P);
      Liveness LV = Liveness::compute(*P);
      LiveRangeInfo OracleInfo = LiveRangeInfo::compute(*P, LV);
      InterferenceGraph OracleIG = InterferenceGraph::compute(*P, LV);
      auto [Info, IG] = computeRangesAndInterference(*P, LV);

      ASSERT_EQ(Info.numVRegs(), OracleInfo.numVRegs())
          << B.Name << "/" << P->name();
      for (VReg R = 0; R < Info.numVRegs(); ++R) {
        const LiveRange &Got = Info.range(R);
        const LiveRange &Want = OracleInfo.range(R);
        std::string Where =
            std::string(B.Name) + "/" + P->name() + " v" + std::to_string(R);
        EXPECT_EQ(Got.Reg, Want.Reg) << Where;
        EXPECT_TRUE(Got.LiveBlocks == Want.LiveBlocks) << Where;
        EXPECT_EQ(Got.SpillSavings, Want.SpillSavings) << Where;
        EXPECT_EQ(Got.NumDefsUses, Want.NumDefsUses) << Where;
        EXPECT_EQ(Got.Span, Want.Span) << Where;
        ASSERT_EQ(Got.Crossings.size(), Want.Crossings.size()) << Where;
        for (unsigned I = 0; I < Got.Crossings.size(); ++I) {
          EXPECT_EQ(Got.Crossings[I].Block, Want.Crossings[I].Block) << Where;
          EXPECT_EQ(Got.Crossings[I].InstIdx, Want.Crossings[I].InstIdx)
              << Where;
          EXPECT_EQ(Got.Crossings[I].CalleeId, Want.Crossings[I].CalleeId)
              << Where;
          EXPECT_EQ(Got.Crossings[I].Freq, Want.Crossings[I].Freq) << Where;
        }
        EXPECT_TRUE(IG.neighbors(R) == OracleIG.neighbors(R)) << Where;
      }
    }
  }
}

} // namespace
