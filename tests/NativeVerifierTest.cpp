//===- tests/NativeVerifierTest.cpp - JIT-image audit mutation harness ----===//
//
// Two halves, mirroring how MIRVerifierTest/MIRVerifierSweepTest split
// one level up:
//
//  * The mutation harness: NativeCodeGen's test hooks plant one defect
//    per verifier obligation into an otherwise-real image (a dropped
//    callee-save, a stray store, a skipped budget check, a clobber
//    beyond the published summary, an undecodable byte) and the audit
//    must report each under its exact diagnostic code. This is the
//    proof the verifier's checks are live -- a check that never fires
//    on mutants is indistinguishable from no check at all.
//
//  * The acceptance sweep: every suite benchmark under every paper
//    configuration, instrumented and raw, emits and audits with zero
//    findings. Emission and auditing are pure byte-level work, so the
//    sweep runs on any host -- no JIT capability required.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "sim/Simulator.h"
#include "verify/NativeVerifier.h"
#include "x64/NativeCodeGen.h"
#include "x64/NativeEngine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace ipra;
using namespace ipra::x64;

namespace {

MProgram compileBench(const char *Name, PaperConfig Config) {
  const BenchmarkProgram *B = findBenchmark(Name);
  EXPECT_NE(B, nullptr) << Name;
  DiagnosticEngine Diags;
  auto Result = compileProgram(B->Source, optionsFor(Config), Diags);
  EXPECT_NE(Result, nullptr) << Diags.str();
  return std::move(Result->Program);
}

/// Everything verifyNativeCode needs alongside the image.
struct Emitted {
  NativeCodeGenOptions CG;
  RegMapTable Maps;
  std::vector<size_t> ProfOff;
  NativeCode Code;
};

/// Mirrors runNativeProgram's codegen setup (budget immediates, block
/// cost ceiling, profile offsets, register maps) without executing.
bool emitImage(const MProgram &Prog, bool Raw, bool PerProc, Emitted &E,
               std::string &Err) {
  E.CG = NativeCodeGenOptions();
  E.CG.Raw = Raw;
  E.CG.MaxSteps = 1u << 20;
  E.CG.MemWords = 1u << 16;
  E.CG.MaxBlockCost = 1;
  E.ProfOff.assign(Prog.Procs.size(), 0);
  size_t Total = 0;
  for (size_t P = 0; P < Prog.Procs.size(); ++P) {
    E.ProfOff[P] = Total;
    Total += Prog.Procs[P].Blocks.size();
    for (const MBlock &B : Prog.Procs[P].Blocks)
      E.CG.MaxBlockCost =
          std::max(E.CG.MaxBlockCost, uint64_t(B.Insts.size()));
  }
  E.Maps = buildRegMapTable(Prog, Raw, PerProc);
  E.Code = NativeCode();
  return emitNativeProgram(Prog, E.CG, E.Maps, E.ProfOff, E.Code, Err);
}

/// Emits \p Prog with \p Defect planted and audits the mutant.
NVerifyResult auditMutant(const MProgram &Prog, bool Raw, bool PerProc,
                          NativeDefect Defect, unsigned GuestReg = 0) {
  NativeCodeGenTestHooks H;
  H.Defect = Defect;
  H.GuestReg = GuestReg;
  setNativeCodeGenTestHooks(&H);
  Emitted E;
  std::string Err;
  bool OK = emitImage(Prog, Raw, PerProc, E, Err);
  setNativeCodeGenTestHooks(nullptr);
  EXPECT_TRUE(OK) << Err;
  if (!OK)
    return NVerifyResult();
  return verifyNativeCode(Prog, E.CG, E.Maps, E.ProfOff, E.Code);
}

TEST(NativeVerifierTest, CleanImageAuditsCleanBothModesBothPolicies) {
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  for (bool PerProc : {false, true}) {
    for (bool Raw : {false, true}) {
      Emitted E;
      std::string Err;
      ASSERT_TRUE(emitImage(Prog, Raw, PerProc, E, Err)) << Err;
      NVerifyResult R = verifyNativeCode(Prog, E.CG, E.Maps, E.ProfOff, E.Code);
      EXPECT_TRUE(R.ok()) << (Raw ? "raw" : "instrumented")
                          << (PerProc ? " perproc" : " global") << ":\n"
                          << R.str();
      EXPECT_EQ(uint64_t(R.ProceduresChecked), E.Code.ProcsEmitted);
      EXPECT_GT(R.InstructionsDecoded, 0u);
    }
  }
}

TEST(NativeVerifierTest, CorruptByteCaughtAsDecode) {
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/false, /*PerProc=*/false,
                                NativeDefect::CorruptByte);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::Decode)) << R.str();
}

TEST(NativeVerifierTest, DroppedCalleeSaveCaughtBothModes) {
  // The trampoline skips push/pop of r12. Instrumented mode pins r12 to
  // a guest register (dhrystone uses far more than three), raw mode
  // zeroes it as the step counter -- either way the trampoline's ret
  // can no longer prove the SysV entry value survives.
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  for (bool Raw : {false, true}) {
    NVerifyResult R =
        auditMutant(Prog, Raw, /*PerProc=*/false, NativeDefect::DropCalleeSave);
    EXPECT_FALSE(R.ok()) << (Raw ? "raw" : "instrumented");
    EXPECT_TRUE(R.hasCode(NVCode::HostCalleeSavedNotPreserved))
        << (Raw ? "raw" : "instrumented") << ":\n"
        << R.str();
  }
}

TEST(NativeVerifierTest, StrayStoreCaught) {
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/false, /*PerProc=*/false,
                                NativeDefect::StrayStore);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::StrayStore)) << R.str();
}

TEST(NativeVerifierTest, SkippedBudgetCheckCaught) {
  // Raw mode: the hook removes the budget test from the first block that
  // is a layout back-edge target, exactly the set the verifier's
  // obligation (e) covers. Any benchmark with a loop qualifies.
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/true, /*PerProc=*/false,
                                NativeDefect::SkipBudgetCheck);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::MissingBudgetCheck)) << R.str();
}

TEST(NativeVerifierTest, ClobberBeyondSummaryCaught) {
  // The hook writes an arbitrary value into a guest register the first
  // emitted procedure's published summary says it preserves; the audit
  // must see the contract break at that procedure's return.
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  ASSERT_EQ(Prog.ClobberMasks.size(), Prog.Procs.size());
  int Victim = -1;
  for (unsigned P = 0; P < Prog.Procs.size(); ++P)
    if (!Prog.Procs[P].IsExternal && !Prog.Procs[P].Blocks.empty()) {
      Victim = int(P);
      break;
    }
  ASSERT_GE(Victim, 0);
  unsigned Guest = 0;
  for (unsigned R = 1; R < NumPhysRegs; ++R)
    if (R != RegSP && R != RegRA && !Prog.ClobberMasks[Victim].test(R)) {
      Guest = R;
      break;
    }
  ASSERT_NE(Guest, 0u) << "first procedure clobbers every register";

  NVerifyResult R = auditMutant(Prog, /*Raw=*/false, /*PerProc=*/false,
                                NativeDefect::ClobberBeyondSummary, Guest);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::GuestClobberBeyondSummary)) << R.str();
}

TEST(NativeVerifierTest, SkipCallSyncCaughtPerProc) {
  // Per-proc raw mode: the hook drops one summary-required sync store at
  // every guest call site, so a dirty cached value never reaches its
  // NativeEnv slot before a call whose callee may read it. The audit's
  // sync-set obligation must name it at the call.
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/true, /*PerProc=*/true,
                                NativeDefect::SkipCallSync);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::CallSyncMissing)) << R.str();
}

TEST(NativeVerifierTest, SkipCallReloadCaughtPerProc) {
  // Per-proc: the hook skips the post-call reload of pinned hosts the
  // callee's summary clobbers, so later reads see pre-call stale copies.
  // The staleness obligation must fire at the first such read.
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/true, /*PerProc=*/true,
                                NativeDefect::SkipCallReload);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.hasCode(NVCode::StaleCachedValue)) << R.str();
}

TEST(NativeVerifierTest, DiagnosticsCarryCodeProcAndOffset) {
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NVerifyResult R = auditMutant(Prog, /*Raw=*/false, /*PerProc=*/false,
                                NativeDefect::StrayStore);
  ASSERT_FALSE(R.Violations.empty());
  const NVerifyDiag &D = R.Violations.front();
  std::string S = D.str();
  EXPECT_NE(S.find(nvCodeName(D.Code)), std::string::npos) << S;
  EXPECT_NE(S.find("+0x"), std::string::npos) << S;
  EXPECT_FALSE(D.Message.empty());
}

// The engine refuses to run (and never caches) an image the audit
// rejects: armed hooks bypass the cache, the fresh mutant fails
// verification, and the run reports the findings instead of executing
// bytes that would crash the process.
TEST(NativeVerifierTest, EngineRejectsMutatedImage) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;
  MProgram Prog = compileBench("dhrystone", PaperConfig::C);
  NativeCodeGenTestHooks H;
  H.Defect = NativeDefect::CorruptByte;
  setNativeCodeGenTestHooks(&H);
  SimOptions Opts;
  Opts.Engine = SimEngine::Native;
  Opts.VerifyNative = true;
  RunStats S = runProgram(Prog, Opts);
  setNativeCodeGenTestHooks(nullptr);
  EXPECT_FALSE(S.OK);
  EXPECT_NE(S.Error.find("native verifier rejected"), std::string::npos)
      << S.Error;
  EXPECT_GT(S.NativeVerifyViolations, 0u);
}

// The acceptance sweep: zero findings across the whole suite, all six
// paper configurations, both native modes. Pure emission + audit, so it
// runs (and keeps its teeth) on hosts that cannot JIT.
class NativeVerifierSweepTest
    : public ::testing::TestWithParam<BenchmarkProgram> {};

TEST_P(NativeVerifierSweepTest, WholeSuiteAllConfigsBothModesAuditClean) {
  const BenchmarkProgram &B = GetParam();
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
        PaperConfig::D, PaperConfig::E}) {
    DiagnosticEngine Diags;
    auto Compiled = compileProgram(B.Source, optionsFor(Config), Diags);
    ASSERT_NE(Compiled, nullptr)
        << B.Name << " under " << paperConfigName(Config) << ":\n"
        << Diags.str();
    for (bool PerProc : {false, true}) {
      for (bool Raw : {false, true}) {
        Emitted E;
        std::string Err;
        ASSERT_TRUE(emitImage(Compiled->Program, Raw, PerProc, E, Err))
            << B.Name << ": " << Err;
        NVerifyResult R =
            verifyNativeCode(Compiled->Program, E.CG, E.Maps, E.ProfOff, E.Code);
        EXPECT_TRUE(R.ok()) << B.Name << " under " << paperConfigName(Config)
                            << (Raw ? " (raw" : " (instrumented")
                            << (PerProc ? ", perproc)" : ", global)") << ":\n"
                            << R.str();
        EXPECT_EQ(uint64_t(R.ProceduresChecked), E.Code.ProcsEmitted) << B.Name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NativeVerifierSweepTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchmarkProgram> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
