//===- tests/IncrementalDifferentialTest.cpp - Incremental vs cold --------===//
//
// The incremental compile service promises that recompiling after an edit
// is *indistinguishable* from a cold compile of the edited module: same
// machine code, same summaries, same stats, same diagnostics -- only
// faster. These tests hold it to that promise with randomized edit
// scripts replayed against both paths, and pin the frontier guarantees:
// a summary-neutral edit recompiles exactly the edited procedure, a
// clobber-visible edit recompiles its closed-caller frontier, and the
// frontier is always ancestor-closed over the call graph.
//
// The edit language is IR-level and deterministic: replaying a script
// against a freshly parsed module always yields the same edited module,
// so the cold compiler and the incremental service see byte-identical
// inputs and any output divergence is the service's fault.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "driver/IncrementalService.h"
#include "frontend/Frontend.h"
#include "programs/Programs.h"

#include "ProgramGenerator.h"
#include "TestRender.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace ipra;

namespace {

//===----------------------------------------------------------------------===//
// The deterministic edit language
//===----------------------------------------------------------------------===//

enum class EditKind {
  /// Insert a dead `LoadImm fresh, Salt` at the entry block's front. The
  /// mid-end deletes it, so the post-opt body -- and therefore the
  /// allocation and the published summary -- is unchanged: the guaranteed
  /// summary-neutral edit, used to pin frontier minimality.
  DeadDef,
  /// Bump the Aux-th LoadImm/AddImm immediate by a positive delta
  /// (positive so divide-by-constant denominators can only grow). Falls
  /// back to DeadDef when the procedure has no immediate to tweak.
  ImmTweak,
  /// Insert a call to procedure Aux (fresh constant arguments matching
  /// its arity) before the entry terminator: the leaf-to-non-leaf and,
  /// when it closes a call-graph cycle, the open/closed-flip edit.
  AddCall,
  /// Insert eight simultaneously-live constants, a sum reduction and a
  /// Print before the entry terminator: forces the allocator onto many
  /// registers so the procedure's clobber summary visibly grows.
  ClobberGrowth,
};

struct Edit {
  EditKind Kind = EditKind::DeadDef;
  int Proc = 0;
  int Aux = 0;
  int64_t Salt = 1;
};

void applyEdit(Module &M, const Edit &E) {
  Procedure &P = *M.procedure(E.Proc);
  BasicBlock *Entry = P.entry();
  switch (E.Kind) {
  case EditKind::DeadDef: {
    Instruction I(Opcode::LoadImm);
    I.Dst = P.makeVReg();
    I.Imm = E.Salt;
    Entry->Insts.insert(Entry->Insts.begin(), I);
    return;
  }
  case EditKind::ImmTweak: {
    std::vector<Instruction *> Imms;
    for (auto &BB : P)
      for (Instruction &I : BB->Insts)
        if (I.Op == Opcode::LoadImm || I.Op == Opcode::AddImm)
          Imms.push_back(&I);
    if (Imms.empty()) {
      Edit Fallback = E;
      Fallback.Kind = EditKind::DeadDef;
      applyEdit(M, Fallback);
      return;
    }
    Imms[unsigned(E.Aux) % Imms.size()]->Imm += 1 + (E.Salt % 3);
    return;
  }
  case EditKind::AddCall: {
    const Procedure &Callee = *M.procedure(E.Aux);
    std::vector<Instruction> New;
    Instruction C(Opcode::Call);
    C.Callee = Callee.id();
    for (unsigned A = 0; A < Callee.ParamVRegs.size(); ++A) {
      Instruction L(Opcode::LoadImm);
      L.Dst = P.makeVReg();
      L.Imm = E.Salt + int64_t(A);
      C.Args.push_back(L.Dst);
      New.push_back(L);
    }
    C.Dst = P.makeVReg();
    New.push_back(C);
    Entry->Insts.insert(Entry->Insts.end() - 1, New.begin(), New.end());
    return;
  }
  case EditKind::ClobberGrowth: {
    // Anchor the chain on an opaque base -- the first parameter, or a
    // scalar global -- so constant folding cannot collapse it back to a
    // single immediate; a bare procedure in a global-free module falls
    // back to a constant (and a weaker edit).
    std::vector<Instruction> New;
    VReg Base = P.ParamVRegs.empty() ? 0 : P.ParamVRegs[0];
    if (!Base)
      for (unsigned G = 0; G < M.Globals.size(); ++G)
        if (M.Globals[G].SizeWords == 1) {
          Instruction L(Opcode::LoadGlobal);
          L.Dst = P.makeVReg();
          L.Global = int(G);
          New.push_back(L);
          Base = L.Dst;
          break;
        }
    if (!Base) {
      Instruction L(Opcode::LoadImm);
      L.Dst = P.makeVReg();
      L.Imm = E.Salt;
      New.push_back(L);
      Base = L.Dst;
    }
    std::vector<VReg> Vals;
    for (int I = 0; I < 8; ++I) {
      Instruction A(Opcode::AddImm);
      A.Dst = P.makeVReg();
      A.Src1 = Base;
      A.Imm = E.Salt + I;
      Vals.push_back(A.Dst);
      New.push_back(A);
    }
    VReg Acc = Vals[0];
    for (int I = 1; I < 8; ++I) {
      Instruction A(Opcode::Add);
      A.Dst = P.makeVReg();
      A.Src1 = Acc;
      A.Src2 = Vals[unsigned(I)];
      Acc = A.Dst;
      New.push_back(A);
    }
    Instruction Pr(Opcode::Print);
    Pr.Src1 = Acc;
    New.push_back(Pr);
    Entry->Insts.insert(Entry->Insts.end() - 1, New.begin(), New.end());
    return;
  }
  }
}

/// Picks an edit applicable to \p M. Deterministic in (Rng state, M).
Edit chooseEdit(std::mt19937 &Rng, const Module &M) {
  std::vector<int> Bodies;
  for (unsigned P = 0; P < M.numProcedures(); ++P)
    if (!M.procedure(int(P))->IsExternal &&
        M.procedure(int(P))->numBlocks() > 0)
      Bodies.push_back(int(P));
  Edit E;
  E.Proc = Bodies[Rng() % Bodies.size()];
  E.Salt = int64_t(Rng() % 50) + 1;
  unsigned Roll = Rng() % 8;
  if (Roll < 3) {
    E.Kind = EditKind::DeadDef;
  } else if (Roll < 5) {
    E.Kind = EditKind::ImmTweak;
    E.Aux = int(Rng() % 64);
  } else if (Roll < 7) {
    E.Kind = EditKind::ClobberGrowth;
  } else {
    // Keep the generated DAG acyclic: callees come from earlier ids (and
    // never main, whose re-entry would recurse forever at runtime). The
    // cycle-creating variant is pinned by a directed test instead.
    std::vector<int> Callees;
    for (int B : Bodies)
      if (B < E.Proc && !M.procedure(B)->IsMain)
        Callees.push_back(B);
    if (Callees.empty()) {
      E.Kind = EditKind::DeadDef;
    } else {
      E.Kind = EditKind::AddCall;
      E.Aux = Callees[Rng() % Callees.size()];
    }
  }
  return E;
}

//===----------------------------------------------------------------------===//
// The differential harness
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> mustIR(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

/// Every published summary, rendered for byte-exact comparison (the
/// machine-code render already covers the clobber masks; this adds the
/// precision flags and parameter locations callers would price against).
std::string renderSummaries(const CompileResult &R) {
  std::string Out;
  for (unsigned P = 0; P < R.IR->numProcedures(); ++P) {
    const RegUsageSummary &S = R.Summaries->lookup(int(P));
    Out += R.IR->procedure(int(P))->name();
    Out += S.Precise ? ": precise " + S.Clobbered.str() : ": default";
    Out += " params";
    for (unsigned L : S.ParamLocs)
      Out += " " + std::to_string(L);
    Out += "\n";
  }
  return Out;
}

/// One module's cold-vs-incremental replay state: the service holds the
/// cached build, Script holds every edit applied so far, and editedIR()
/// reconstructs the edited module from scratch -- the same bytes the
/// service was fed, handed to the cold compiler as the oracle.
class DiffHarness {
public:
  DiffHarness(std::string Source, const CompileOptions &Opts)
      : Source(std::move(Source)), Opts(Opts), Svc(Opts) {}

  std::unique_ptr<Module> editedIR() {
    auto M = mustIR(Source);
    if (M)
      for (const Edit &E : Script)
        applyEdit(*M, E);
    return M;
  }

  void prime() {
    DiagnosticEngine Diags;
    auto M = editedIR();
    ASSERT_NE(M, nullptr);
    ASSERT_NE(Svc.compileIR(std::move(M), Diags), nullptr) << Diags.str();
  }

  /// Applies \p E to both paths and asserts byte-identity plus the
  /// frontier invariants. \p SimCheck additionally executes both programs
  /// and compares the runs (skipped where an edit may have created
  /// unbounded recursion).
  void stepAndCheck(const Edit &E, bool SimCheck, const std::string &Where) {
    Script.push_back(E);

    DiagnosticEngine ColdDiags;
    auto Cold = compileModule(editedIR(), Opts, ColdDiags);
    DiagnosticEngine IncDiags;
    const CompileResult *Inc = Svc.recompileIR(editedIR(), IncDiags);
    ASSERT_NE(Cold, nullptr) << Where << "\n" << ColdDiags.str();
    ASSERT_NE(Inc, nullptr) << Where << "\n" << IncDiags.str();

    // Byte-identity of every observable artifact.
    ASSERT_EQ(renderProgram(*Inc), renderProgram(*Cold)) << Where;
    ASSERT_EQ(renderSummaries(*Inc), renderSummaries(*Cold)) << Where;
    ASSERT_TRUE(Inc->Stats == Cold->Stats)
        << Where << "\nincremental: " << Inc->Stats.totals().json()
        << "\ncold: " << Cold->Stats.totals().json();
    ASSERT_EQ(IncDiags.str(), ColdDiags.str()) << Where;

    // Frontier invariants. Reused + Frontier partitions the module, the
    // edit's own procedure is always in the frontier, and the frontier is
    // ancestor-closed: every closed caller of a summary-changed procedure
    // was recompiled.
    const IncrementalStats &S = Svc.lastStats();
    EXPECT_FALSE(S.FullRebuild) << Where;
    EXPECT_EQ(S.Reused + S.Frontier, S.Procs) << Where;
    EXPECT_EQ(S.SelfChanged, 1u) << Where;
    ASSERT_EQ(S.RecompiledFlags.size(), size_t(S.Procs)) << Where;
    EXPECT_TRUE(S.RecompiledFlags[unsigned(E.Proc)]) << Where;
    auto Edited = editedIR();
    ASSERT_NE(Edited, nullptr);
    CallGraph CG = CallGraph::build(*Edited);
    for (unsigned C = 0; C < S.Procs; ++C) {
      if (!S.SummaryChangedFlags[C] || CG.isOpen(int(C)))
        continue;
      for (unsigned P = 0; P < S.Procs; ++P)
        for (int Callee : CG.node(int(P)).Callees)
          if (Callee == int(C)) {
            EXPECT_TRUE(S.RecompiledFlags[P])
                << Where << ": " << Edited->procedure(int(P))->name()
                << " calls summary-changed "
                << Edited->procedure(int(C))->name()
                << " but was served from the cache";
          }
    }
    // Frontier minimality: the summary-neutral edit recompiles exactly
    // the procedure it touched.
    if (E.Kind == EditKind::DeadDef && Opts.MidEndOpt) {
      EXPECT_EQ(S.Frontier, 1u) << Where;
      EXPECT_EQ(S.SummaryChanged, 0u) << Where;
    }

    if (SimCheck) {
      SimOptions SOpts;
      SOpts.MaxSteps = 20 * 1000 * 1000;
      RunStats ColdRun = runProgram(Cold->Program, SOpts);
      RunStats IncRun = runProgram(Inc->Program, SOpts);
      EXPECT_EQ(IncRun.OK, ColdRun.OK) << Where;
      EXPECT_EQ(IncRun.Error, ColdRun.Error) << Where;
      EXPECT_EQ(IncRun.Output, ColdRun.Output) << Where;
      EXPECT_EQ(IncRun.ExitValue, ColdRun.ExitValue) << Where;
    }
  }

  IncrementalService &service() { return Svc; }
  const std::vector<Edit> &script() const { return Script; }

private:
  std::string Source;
  CompileOptions Opts;
  IncrementalService Svc;
  std::vector<Edit> Script;
};

const PaperConfig AllConfigs[] = {PaperConfig::Base, PaperConfig::A,
                                  PaperConfig::B,    PaperConfig::C,
                                  PaperConfig::D,    PaperConfig::E};
const unsigned ThreadCounts[] = {0, 1, 4};

//===----------------------------------------------------------------------===//
// Randomized edit scripts: generated programs
//===----------------------------------------------------------------------===//

// Ten shards x 20 scripts x 3 edits = 200 scripts / 600 differential
// steps, cycling all 6 paper configurations x Threads {0, 1, 4} so every
// combination recurs many times across the sweep.
class IncrementalFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalFuzzTest, RandomEditScriptsStayByteIdentical) {
  const int ScriptsPerShard = 20;
  for (int Script = 0; Script < ScriptsPerShard; ++Script) {
    uint32_t Seed = uint32_t(GetParam() * 100000 + Script);
    std::mt19937 Rng(Seed);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();

    int Cell = GetParam() * ScriptsPerShard + Script;
    CompileOptions Opts = optionsFor(AllConfigs[unsigned(Cell) % 6]);
    Opts.Threads = ThreadCounts[unsigned(Cell) % 3];

    DiffHarness H(Src, Opts);
    H.prime();
    if (::testing::Test::HasFatalFailure())
      return;
    for (int Step = 0; Step < 3; ++Step) {
      auto M = H.editedIR();
      ASSERT_NE(M, nullptr);
      Edit E = chooseEdit(Rng, *M);
      std::string Where = "seed " + std::to_string(Seed) + " step " +
                          std::to_string(Step) + " kind " +
                          std::to_string(int(E.Kind)) + " proc " +
                          M->procedure(E.Proc)->name() + "\n" + Src;
      // The chooser never lets a generated script create recursion, so
      // every step is also run through the simulator differentially.
      H.stepAndCheck(E, /*SimCheck=*/Step == 2, Where);
      if (::testing::Test::HasFatalFailure())
        return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, IncrementalFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

//===----------------------------------------------------------------------===//
// Randomized edit scripts: the benchmark suite
//===----------------------------------------------------------------------===//

class IncrementalSuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSuiteTest, SuiteProgramsSurviveEditScripts) {
  const auto &Suite = benchmarkSuite();
  if (GetParam() >= int(Suite.size()))
    GTEST_SKIP() << "suite has only " << Suite.size() << " programs";
  const BenchmarkProgram &B = Suite[unsigned(GetParam())];
  std::mt19937 Rng(0x1C0DEu + uint32_t(GetParam()));

  CompileOptions Opts = optionsFor(AllConfigs[unsigned(GetParam()) % 6]);
  Opts.Threads = ThreadCounts[unsigned(GetParam()) % 3];

  DiffHarness H(B.Source, Opts);
  H.prime();
  if (::testing::Test::HasFatalFailure())
    return;
  for (int Step = 0; Step < 3; ++Step) {
    auto M = H.editedIR();
    ASSERT_NE(M, nullptr);
    Edit E = chooseEdit(Rng, *M);
    std::string Where = std::string(B.Name) + " step " +
                        std::to_string(Step) + " kind " +
                        std::to_string(int(E.Kind)) + " proc " +
                        M->procedure(E.Proc)->name();
    // Suite programs may be recursive already; an AddCall edit can extend
    // a cycle into an unbounded runtime, so the simulator cross-check is
    // reserved for scripts that stayed call-free.
    bool CallFree = true;
    for (const Edit &Prev : H.script())
      CallFree &= Prev.Kind != EditKind::AddCall;
    CallFree &= E.Kind != EditKind::AddCall;
    H.stepAndCheck(E, /*SimCheck=*/CallFree && Step == 2, Where);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, IncrementalSuiteTest,
                         ::testing::Range(0, 13));

//===----------------------------------------------------------------------===//
// Directed frontier tests
//===----------------------------------------------------------------------===//

const char *Chain = R"(
  func leaf(x) { return x + 1; }
  func mid(x) { return leaf(x) + 2; }
  func main() { print(mid(5)); return 0; }
)";

int procId(Module &M, const char *Name) {
  Procedure *P = M.findProcedure(Name);
  EXPECT_NE(P, nullptr) << Name;
  return P ? P->id() : -1;
}

TEST(IncrementalFrontierTest, SummaryNeutralEditRecompilesExactlyOneProc) {
  for (PaperConfig Config : AllConfigs) {
    DiffHarness H(Chain, optionsFor(Config));
    H.prime();
    auto M = H.editedIR();
    ASSERT_NE(M, nullptr);
    Edit E{EditKind::DeadDef, procId(*M, "leaf"), 0, 7};
    H.stepAndCheck(E, /*SimCheck=*/true, paperConfigName(Config));
    const IncrementalStats &S = H.service().lastStats();
    EXPECT_EQ(S.Frontier, 1u) << paperConfigName(Config);
    EXPECT_EQ(S.Reused, S.Procs - 1) << paperConfigName(Config);
    EXPECT_EQ(S.SummaryChanged, 0u) << paperConfigName(Config);
    // The counters publish under the documented names.
    StatCounters C = S.counters();
    EXPECT_EQ(C.get("incremental.procs_reused"), uint64_t(S.Reused));
    EXPECT_EQ(C.get("incremental.frontier_size"), 1u);
    EXPECT_EQ(C.get("incremental.summary_changed"), 0u);
    EXPECT_EQ(C.get("incremental.full_rebuild"), 0u);
  }
}

TEST(IncrementalFrontierTest, ClobberGrowthDirtiesTheClosedCallerFrontier) {
  // Under -O3 the leaf's precise clobber mask prices mid's call sites;
  // growing it must pull mid into the frontier. (Under -O2 there is no
  // summary coupling: the frontier stays at the edited leaf.)
  DiffHarness H(Chain, optionsFor(PaperConfig::C));
  H.prime();
  auto M = H.editedIR();
  ASSERT_NE(M, nullptr);
  int Leaf = procId(*M, "leaf"), Mid = procId(*M, "mid"),
      Main = procId(*M, "main");
  Edit E{EditKind::ClobberGrowth, Leaf, 0, 3};
  H.stepAndCheck(E, /*SimCheck=*/true, "clobber-growth");
  const IncrementalStats &S = H.service().lastStats();
  ASSERT_EQ(S.SummaryChangedFlags.size(), size_t(S.Procs));
  EXPECT_TRUE(S.SummaryChangedFlags[unsigned(Leaf)])
      << "eight simultaneously-live values must grow a one-register "
         "leaf's clobber mask";
  EXPECT_TRUE(S.RecompiledFlags[unsigned(Mid)]);
  if (S.SummaryChangedFlags[unsigned(Mid)]) {
    EXPECT_TRUE(S.RecompiledFlags[unsigned(Main)]);
  }
}

TEST(IncrementalFrontierTest, CycleCreationFlipsOpenClosedEverywhere) {
  // leaf -> mid closes a leaf/mid cycle: both flip to open, their precise
  // summaries retract to the default protocol, and main -- whose call to
  // mid was priced against the precise summary -- lands in the frontier
  // too. (Compile-time only: the edited program would recurse forever.)
  DiffHarness H(Chain, optionsFor(PaperConfig::C));
  H.prime();
  auto M = H.editedIR();
  ASSERT_NE(M, nullptr);
  Edit E{EditKind::AddCall, procId(*M, "leaf"), procId(*M, "mid"), 1};
  H.stepAndCheck(E, /*SimCheck=*/false, "cycle-creation");
  const IncrementalStats &S = H.service().lastStats();
  EXPECT_EQ(S.Frontier, S.Procs);
  EXPECT_EQ(S.Reused, 0u);
}

TEST(IncrementalFrontierTest, ShapeChangeFallsBackToFullRebuild) {
  IncrementalService Svc(optionsFor(PaperConfig::C));
  DiagnosticEngine Diags;
  ASSERT_NE(Svc.compile(Chain, Diags), nullptr) << Diags.str();

  // A new procedure changes the name-to-id mapping: no per-procedure
  // reuse is meaningful, and the service must say so.
  const char *Grown = R"(
    func leaf(x) { return x + 1; }
    func extra(x) { return x * 2; }
    func mid(x) { return leaf(x) + 2; }
    func main() { print(mid(5) + extra(1)); return 0; }
  )";
  DiagnosticEngine Diags2;
  const CompileResult *Inc = Svc.recompile(Grown, Diags2);
  ASSERT_NE(Inc, nullptr) << Diags2.str();
  const IncrementalStats &S = Svc.lastStats();
  EXPECT_TRUE(S.FullRebuild);
  EXPECT_EQ(S.Frontier, S.Procs);
  EXPECT_EQ(S.Reused, 0u);

  DiagnosticEngine ColdDiags;
  auto Cold = compileProgram(Grown, optionsFor(PaperConfig::C), ColdDiags);
  ASSERT_NE(Cold, nullptr) << ColdDiags.str();
  EXPECT_EQ(renderProgram(*Inc), renderProgram(*Cold));
}

TEST(IncrementalFrontierTest, HintsAreValidatedButNeverTrusted) {
  DiffHarness H(Chain, optionsFor(PaperConfig::C));
  H.prime();
  IncrementalService &Svc = H.service();

  // An edit to leaf, hinted as "main changed": the fingerprints catch the
  // real change anyway (one hint miss), and the output is still exactly
  // the cold compile of the edited module.
  auto M = H.editedIR();
  ASSERT_NE(M, nullptr);
  int Leaf = procId(*M, "leaf"), Main = procId(*M, "main");
  auto Edited = H.editedIR();
  applyEdit(*Edited, Edit{EditKind::ImmTweak, Leaf, 0, 1});
  auto ColdCopy = H.editedIR();
  applyEdit(*ColdCopy, Edit{EditKind::ImmTweak, Leaf, 0, 1});

  std::vector<int> Hint{Main};
  DiagnosticEngine Diags;
  const CompileResult *Inc =
      Svc.recompileIR(std::move(Edited), Diags, &Hint);
  ASSERT_NE(Inc, nullptr) << Diags.str();
  EXPECT_EQ(Svc.lastStats().HintMisses, 1u);
  EXPECT_TRUE(Svc.lastStats().RecompiledFlags[unsigned(Leaf)]);

  DiagnosticEngine ColdDiags;
  auto Cold = compileModule(std::move(ColdCopy), Svc.options(), ColdDiags);
  ASSERT_NE(Cold, nullptr) << ColdDiags.str();
  EXPECT_EQ(renderProgram(*Inc), renderProgram(*Cold));

  // An out-of-range hint id is an error and must leave the cached state
  // untouched (same artifacts served before and after).
  std::string Before = renderProgram(*Svc.current());
  std::vector<int> Bad{99};
  DiagnosticEngine BadDiags;
  EXPECT_EQ(Svc.recompileIR(H.editedIR(), BadDiags, &Bad), nullptr);
  EXPECT_TRUE(BadDiags.hasErrors());
  ASSERT_TRUE(Svc.loaded());
  EXPECT_EQ(renderProgram(*Svc.current()), Before);
}

TEST(IncrementalFrontierTest, ThreadCountsProduceIdenticalFrontiers) {
  // The reuse decisions ride inside the scheduler's tasks; they must be
  // deterministic at any thread count -- same frontier flags, same bytes.
  std::mt19937 Rng(0xF00Du);
  ProgramGenerator Gen(0xF00Du);
  std::string Src = Gen.generate();

  std::vector<Edit> Script;
  {
    auto M = mustIR(Src);
    ASSERT_NE(M, nullptr);
    for (int Step = 0; Step < 3; ++Step) {
      Script.push_back(chooseEdit(Rng, *M));
      applyEdit(*M, Script.back());
    }
  }

  std::string Render0;
  std::vector<char> Flags0;
  for (unsigned Threads : ThreadCounts) {
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.Threads = Threads;
    DiffHarness H(Src, Opts);
    H.prime();
    if (::testing::Test::HasFatalFailure())
      return;
    for (const Edit &E : Script) {
      H.stepAndCheck(E, /*SimCheck=*/false,
                     "threads=" + std::to_string(Threads));
      if (::testing::Test::HasFatalFailure())
        return;
    }
    const IncrementalStats &S = H.service().lastStats();
    std::string Render = renderProgram(*H.service().current());
    if (Threads == 0) {
      Render0 = Render;
      Flags0 = S.RecompiledFlags;
    } else {
      EXPECT_EQ(Render, Render0) << "threads=" << Threads;
      EXPECT_EQ(S.RecompiledFlags, Flags0) << "threads=" << Threads;
    }
  }
}

TEST(IncrementalFrontierTest, FailedRecompileKeepsTheLastGoodBuild) {
  IncrementalService Svc(optionsFor(PaperConfig::C));
  DiagnosticEngine Diags;
  ASSERT_NE(Svc.compile(Chain, Diags), nullptr) << Diags.str();
  std::string Before = renderProgram(*Svc.current());

  DiagnosticEngine BadDiags;
  EXPECT_EQ(Svc.recompile("func main( { syntax error", BadDiags), nullptr);
  EXPECT_TRUE(BadDiags.hasErrors());
  ASSERT_TRUE(Svc.loaded());
  EXPECT_EQ(renderProgram(*Svc.current()), Before)
      << "a failed edit must not corrupt the cached build";

  // And the service still accepts good edits afterwards.
  DiagnosticEngine GoodDiags;
  const CompileResult *R = Svc.recompile(Chain, GoodDiags);
  ASSERT_NE(R, nullptr) << GoodDiags.str();
  EXPECT_EQ(renderProgram(*R), Before);
  EXPECT_EQ(Svc.lastStats().Frontier, 0u)
      << "recompiling identical source must reuse everything";
}

} // namespace
