//===- tests/IRTest.cpp - Unit tests for the IR layer ---------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Procedure.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

/// Builds: proc f(%1) { bb0: %2 = addimm %1, 1; ret %2 }
Procedure *buildIncProc(Module &M) {
  Procedure *P = M.makeProcedure("inc");
  P->ParamVRegs.push_back(P->makeVReg());
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg R = B.addImm(P->ParamVRegs[0], 1);
  B.ret(R);
  return P;
}

TEST(IRTest, BuilderProducesExpectedShape) {
  Module M;
  Procedure *P = buildIncProc(M);
  ASSERT_EQ(P->numBlocks(), 1u);
  const BasicBlock *BB = P->entry();
  ASSERT_EQ(BB->Insts.size(), 2u);
  EXPECT_EQ(BB->Insts[0].Op, Opcode::AddImm);
  EXPECT_EQ(BB->Insts[0].Imm, 1);
  EXPECT_EQ(BB->Insts[1].Op, Opcode::Ret);
  EXPECT_TRUE(BB->hasTerminator());
  EXPECT_TRUE(BB->successors().empty());
}

TEST(IRTest, DefsAndUses) {
  Instruction Add(Opcode::Add);
  Add.Dst = 3;
  Add.Src1 = 1;
  Add.Src2 = 2;
  EXPECT_EQ(Add.def(), 3u);
  EXPECT_EQ(Add.uses(), (std::vector<VReg>{1, 2}));

  Instruction St(Opcode::Store);
  St.Src1 = 4;
  St.Src2 = 5;
  EXPECT_EQ(St.def(), 0u);
  EXPECT_EQ(St.uses(), (std::vector<VReg>{4, 5}));

  Instruction Call(Opcode::Call);
  Call.Dst = 9;
  Call.Callee = 0;
  Call.Args = {6, 7};
  EXPECT_EQ(Call.def(), 9u);
  EXPECT_EQ(Call.uses(), (std::vector<VReg>{6, 7}));

  Instruction CallI(Opcode::CallIndirect);
  CallI.Dst = 9;
  CallI.Src1 = 8;
  CallI.Args = {6};
  EXPECT_EQ(CallI.uses(), (std::vector<VReg>{8, 6}));

  Instruction RetVoid(Opcode::Ret);
  EXPECT_EQ(RetVoid.def(), 0u);
  EXPECT_TRUE(RetVoid.uses().empty());
}

TEST(IRTest, CFGEdgesAndPreds) {
  Module M;
  Procedure *P = M.makeProcedure("branchy");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock();
  BasicBlock *B2 = P->makeBlock();
  BasicBlock *B3 = P->makeBlock();
  B.setInsertBlock(B0);
  VReg C = B.loadImm(1);
  B.condBr(C, B1, B2);
  B.setInsertBlock(B1);
  B.br(B3);
  B.setInsertBlock(B2);
  B.br(B3);
  B.setInsertBlock(B3);
  B.ret();

  EXPECT_EQ(B0->successors(), (std::vector<int>{1, 2}));
  P->recomputeCFG();
  EXPECT_TRUE(B0->Preds.empty());
  EXPECT_EQ(B1->Preds, (std::vector<int>{0}));
  EXPECT_EQ(B3->Preds, (std::vector<int>{1, 2}));
}

TEST(IRTest, ReversePostOrderVisitsPredsFirstInDag) {
  Module M;
  Procedure *P = M.makeProcedure("diamond");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock();
  BasicBlock *B2 = P->makeBlock();
  BasicBlock *B3 = P->makeBlock();
  B.setInsertBlock(B0);
  VReg C = B.loadImm(0);
  B.condBr(C, B1, B2);
  B.setInsertBlock(B1);
  B.br(B3);
  B.setInsertBlock(B2);
  B.br(B3);
  B.setInsertBlock(B3);
  B.ret();

  std::vector<int> RPO = P->reversePostOrder();
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0);
  EXPECT_EQ(RPO.back(), 3);
}

TEST(IRTest, ReversePostOrderSkipsUnreachable) {
  Module M;
  Procedure *P = M.makeProcedure("unreachable");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock(); // never branched to
  B.setInsertBlock(B0);
  B.ret();
  B.setInsertBlock(B1);
  B.ret();
  std::vector<int> RPO = P->reversePostOrder();
  EXPECT_EQ(RPO, (std::vector<int>{0}));
}

TEST(IRTest, PrinterRendersInstructions) {
  Module M;
  Procedure *P = buildIncProc(M);
  std::string Text = toString(*P);
  EXPECT_NE(Text.find("proc inc(%1)"), std::string::npos);
  EXPECT_NE(Text.find("%2 = addimm %1, 1"), std::string::npos);
  EXPECT_NE(Text.find("ret %2"), std::string::npos);
}

TEST(IRTest, PrinterRendersMemoryAndCalls) {
  Module M;
  int G = M.makeGlobal("counter");
  int A = M.makeGlobal("table", 10);
  Procedure *Inc = buildIncProc(M);
  Procedure *P = M.makeProcedure("user");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg V = B.loadGlobal(G);
  B.storeGlobal(G, V);
  VReg Base = B.addrGlobal(A);
  VReg L = B.load(Base, 3);
  B.store(Base, L, 4);
  VReg R = B.call(Inc->id(), {L});
  B.print(R);
  B.ret();

  std::string Text = toString(M);
  EXPECT_NE(Text.find("global @0 counter[1]"), std::string::npos);
  EXPECT_NE(Text.find("global @1 table[10]"), std::string::npos);
  EXPECT_NE(Text.find("loadglobal @0"), std::string::npos);
  EXPECT_NE(Text.find("storeglobal @0"), std::string::npos);
  EXPECT_NE(Text.find("load [%2 + 3]"), std::string::npos);
  EXPECT_NE(Text.find("store [%2 + 4], %3"), std::string::npos);
  EXPECT_NE(Text.find("call proc0(%3)"), std::string::npos);
}

TEST(VerifierTest, AcceptsWellFormed) {
  Module M;
  buildIncProc(M);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verify(M, Diags)) << Diags.str();
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module M;
  Procedure *P = M.makeProcedure("bad");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  B.loadImm(1);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
  EXPECT_NE(Diags.str().find("lacks a terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsBadBranchTarget) {
  Module M;
  Procedure *P = M.makeProcedure("bad");
  BasicBlock *B0 = P->makeBlock();
  Instruction Br(Opcode::Br);
  Br.Target1 = 7;
  B0->Insts.push_back(Br);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
  EXPECT_NE(Diags.str().find("out of range"), std::string::npos);
}

TEST(VerifierTest, RejectsOutOfRangeVReg) {
  Module M;
  Procedure *P = M.makeProcedure("bad");
  BasicBlock *B0 = P->makeBlock();
  Instruction RetI(Opcode::Ret);
  RetI.Src1 = 42; // never allocated
  B0->Insts.push_back(RetI);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
}

TEST(VerifierTest, RejectsArityMismatch) {
  Module M;
  Procedure *Inc = buildIncProc(M);
  Procedure *P = M.makeProcedure("caller");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  B.call(Inc->id(), {}); // inc takes one argument
  B.ret();
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
  EXPECT_NE(Diags.str().find("arity mismatch"), std::string::npos);
}

TEST(VerifierTest, RejectsScalarAccessToAggregate) {
  Module M;
  int A = M.makeGlobal("arr", 8);
  Procedure *P = M.makeProcedure("bad");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg V = B.loadGlobal(A);
  B.ret(V);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
  EXPECT_NE(Diags.str().find("scalar access to aggregate"), std::string::npos);
}

TEST(VerifierTest, RejectsFuncAddrWithoutFlag) {
  Module M;
  Procedure *Inc = buildIncProc(M);
  Procedure *P = M.makeProcedure("taker");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg F = B.funcAddr(Inc->id());
  B.ret(F);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verify(M, Diags));
  Inc->AddressTaken = true;
  DiagnosticEngine Diags2;
  EXPECT_TRUE(verify(M, Diags2)) << Diags2.str();
}

} // namespace
